"""Area model for the Section-5 evaluation.

Transistor-count accounting for both devices:

**Conventional MC-FPGA** (Fig. 2 cost structure): every configuration
bit — routing switch or LUT bit — owns ``n`` SRAM bits plus an ``n:1``
one-hot multiplexer, a share of a context decoder, and its share of the
decoded context-line distribution and per-plane write access wiring.

**Proposed MC-FPGA**:

- every *switch* configuration bit is one switch element (CONSTANT and
  LITERAL patterns need nothing more); GENERAL patterns draw extra SEs
  from a shared decoder bank (:mod:`repro.core.decoder_synth`), divided
  by the measured sharing factor;
- the adaptive logic block stores only its *distinct* configuration
  planes in plain SRAM (the MCMG-LUT of Fig. 12) plus a handful of
  RCM SEs for plane-select / size control;
- fixed RCM overhead (P switches, C controllers, double-length line
  buffers, RCM wiring) is charged as a factor on the CMOS SE area —
  *technology-independent*, because replacing SEs with FePGs does not
  shrink plain wires and buffers.  This is what makes the FePG point a
  *prediction*: given the CMOS ratio and the paper's own "FePG SE = 50%
  of a CMOS SE", the FePG ratio follows with no extra freedom.

The paper publishes no transistor table, so two constant sets ship:

- :meth:`AreaConstants.textbook` — standard-cell textbook counts with
  minimal overheads; the first-principles sanity model.
- :meth:`AreaConstants.paper_calibrated` — the same structure with the
  conventional cell's distribution/write overhead and the RCM overhead
  factor set so the CMOS ratio lands on the paper's 45% at the stated
  operating point (4 contexts, 5% change, 6-input 2-output MCMG-LUTs).
  The FePG 37% is then checked, not fit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.decoder_synth import decoder_cost
from repro.core.patterns import PatternClass
from repro.errors import ArchitectureError
from repro.utils.bitops import clog2, is_pow2


class Technology(enum.Enum):
    CMOS = "cmos"
    FEPG = "fepg"


@dataclass(frozen=True)
class AreaConstants:
    """Transistor counts (minimum-transistor equivalents).

    ``conv_dist_per_plane`` models, per conventional cell and per
    configuration plane, the decoded context line crossing it, its
    driver share, and the plane's write access (wordline/bitline share)
    — distribution cost grows with the context count, which is exactly
    the overhead the paper attacks.  ``rcm_overhead`` is the
    proposed tile's non-SE area (P switches, C controllers, double-length
    buffers, RCM wiring) as a fraction of its CMOS SE area.
    """

    sram_bit: float = 6.0
    tgate: float = 2.0
    mux2: float = 4.0              # both select polarities from the SRAM cell
    onehot_mux_per_input: float = 2.0
    decoder_2to4: float = 28.0
    buffer: float = 4.0
    conv_decoder_share: int = 8    # conventional cells per local decoder
    conv_dist_per_plane: float = 1.0
    rcm_overhead: float = 0.30
    fepg_se_factor: float = 0.5    # paper Section 5: FePG SE = 50% CMOS SE
    plane_select_ses_per_output: int = 4

    @classmethod
    def textbook(cls) -> "AreaConstants":
        """First-principles counts, minimal overheads."""
        return cls()

    @classmethod
    def paper_calibrated(cls) -> "AreaConstants":
        """Constants landing on the paper's 45% (CMOS) at its operating
        point; the FePG 37% then follows from fepg_se_factor alone.

        Levers (documented; one headline number, one lever pair):

        - ``conv_dist_per_plane = 11.25``: conventional multi-context
          cells pay, per plane, for distributing a decoded context line
          and the plane's write access to *every* configuration bit (45T
          total at four contexts) — the overhead Trimberger's
          time-multiplexed FPGA and DeHon's DPGA both identify as the
          dominant cost of context memory.
        - ``rcm_overhead = 1.83``: P switches, C controllers, RCM track
          wiring and double-length buffers, charged per CMOS-SE of
          decoder area.

        With these two levers the model gives 0.448 (CMOS); the FePG
        point then comes out at 0.371 with no further fitting.
        """
        return cls(conv_dist_per_plane=11.25, rcm_overhead=1.83)

    # -- primitive cells ---------------------------------------------------- #
    def se_area(self, tech: Technology = Technology.CMOS) -> float:
        """One switch element: 2 memory bits + 2:1 mux + pass gate."""
        base = 2 * self.sram_bit + self.mux2 + self.tgate
        if tech is Technology.FEPG:
            return base * self.fepg_se_factor
        return base

    def conventional_cell_area(self, n_contexts: int) -> float:
        """One conventional configuration bit (Fig. 2)."""
        if not is_pow2(n_contexts):
            raise ArchitectureError("n_contexts must be a power of two")
        decoder = self.decoder_2to4 * max(1, clog2(n_contexts) - 1)
        return (
            n_contexts
            * (self.sram_bit + self.onehot_mux_per_input + self.conv_dist_per_plane)
            + decoder / self.conv_decoder_share
        )


@dataclass
class PatternMix:
    """Fractions of configuration bits per pattern class."""

    constant: float
    literal: float
    general: float

    def __post_init__(self) -> None:
        total = self.constant + self.literal + self.general
        if abs(total - 1.0) > 1e-9:
            raise ArchitectureError(f"pattern mix must sum to 1, got {total}")

    @classmethod
    def from_census(cls, census: dict[PatternClass, int]) -> "PatternMix":
        total = sum(census.values())
        if total == 0:
            return cls(1.0, 0.0, 0.0)
        return cls(
            census.get(PatternClass.CONSTANT, 0) / total,
            census.get(PatternClass.LITERAL, 0) / total,
            census.get(PatternClass.GENERAL, 0) / total,
        )


def analytic_pattern_mix(change_rate: float, n_contexts: int) -> PatternMix:
    """Pattern-class mix implied by a per-transition bit-change rate.

    Model: a configuration bit flips independently with probability
    ``change_rate`` at each of the ``n-1`` plane transitions (the paper's
    "percentage of changes in configuration data between contexts").
    Exact by enumeration of flip placements; complementing the start
    value preserves the class, so it drops out.
    """
    if not 0.0 <= change_rate <= 1.0:
        raise ArchitectureError("change_rate must be in [0, 1]")
    if not is_pow2(n_contexts):
        raise ArchitectureError("n_contexts must be a power of two")
    from repro.core.patterns import classify_mask

    n = n_contexts
    p = change_rate
    probs = {PatternClass.CONSTANT: 0.0, PatternClass.LITERAL: 0.0,
             PatternClass.GENERAL: 0.0}
    for flips in range(1 << (n - 1)):
        mask = 0
        value = 0
        for c in range(n):
            if c > 0 and (flips >> (c - 1)) & 1:
                value ^= 1
            mask |= value << c
        n_flips = bin(flips).count("1")
        prob = (p ** n_flips) * ((1 - p) ** (n - 1 - n_flips))
        probs[classify_mask(mask, n)] += prob
    total = sum(probs.values())
    return PatternMix(
        probs[PatternClass.CONSTANT] / total,
        probs[PatternClass.LITERAL] / total,
        probs[PatternClass.GENERAL] / total,
    )


def expected_distinct_planes(lut_change_prob: float, n_contexts: int) -> float:
    """Expected distinct LUT planes under a per-transition table-change
    probability ``q``: each of the ``n-1`` transitions introduces a new
    distinct plane with probability ``q``."""
    if not 0.0 <= lut_change_prob <= 1.0:
        raise ArchitectureError("lut_change_prob must be in [0, 1]")
    return 1.0 + (n_contexts - 1) * lut_change_prob


def average_general_decoder_ses(n_contexts: int) -> float:
    """Mean isolated decoder cost over all GENERAL patterns."""
    from repro.core.patterns import classify_mask

    general = [
        decoder_cost(m, n_contexts)
        for m in range(1 << n_contexts)
        if classify_mask(m, n_contexts) is PatternClass.GENERAL
    ]
    return sum(general) / len(general) if general else 0.0


@dataclass
class TileCounts:
    """Configuration-bit counts per tile (from the RRG and LUT geometry)."""

    switch_bits: int
    lut_bits: int

    @classmethod
    def from_arch(cls, params, rrg=None) -> "TileCounts":
        """Per-tile counts; uses the real RRG when given."""
        if rrg is not None:
            n_switch = rrg.pass_switch_count()
            n_pin = sum(
                1
                for edges in rrg.out_edges
                for (_, k) in edges
                if k.value == "pin"
            )
            switch_bits = (n_switch + n_pin) / max(1, params.n_tiles)
        else:
            geom = params.lut_geometry()
            pins = geom.base_inputs + geom.max_extra_inputs + params.lut_outputs
            switch_bits = params.channel_width * 6 + pins * params.channel_width
        return cls(
            switch_bits=int(round(switch_bits)),
            lut_bits=params.lut_config_bits_per_tile(),
        )


@dataclass
class AreaBreakdown:
    """Per-tile area decomposition of one device style."""

    switch_area: float
    lut_area: float
    overhead_area: float = 0.0

    @property
    def total(self) -> float:
        return self.switch_area + self.lut_area + self.overhead_area


@dataclass
class AreaComparison:
    """The Section-5 deliverable: proposed vs conventional."""

    conventional: AreaBreakdown
    proposed: AreaBreakdown
    technology: Technology

    @property
    def ratio(self) -> float:
        return self.proposed.total / self.conventional.total


class AreaModel:
    """Evaluate proposed-vs-conventional tile area under a pattern mix."""

    def __init__(self, constants: AreaConstants | None = None) -> None:
        self.constants = constants or AreaConstants.paper_calibrated()

    # -- per-configuration-bit costs ---------------------------------------- #
    def conventional_bit(self, n_contexts: int) -> float:
        return self.constants.conventional_cell_area(n_contexts)

    def proposed_switch_bit(
        self,
        mix: PatternMix,
        n_contexts: int,
        sharing_factor: float = 1.0,
        tech: Technology = Technology.CMOS,
    ) -> float:
        """Expected SE area per routing-switch configuration bit.

        One SE per bit always (it *is* the switch); GENERAL bits add the
        mux-tree SEs from the shared decoder bank.
        """
        if sharing_factor < 1.0:
            raise ArchitectureError("sharing factor must be >= 1")
        se = self.constants.se_area(tech)
        extra = average_general_decoder_ses(n_contexts) * se / sharing_factor
        return se + mix.general * extra

    # -- tiles ---------------------------------------------------------------- #
    def conventional_tile(self, counts: TileCounts, n_contexts: int) -> AreaBreakdown:
        bit = self.conventional_bit(n_contexts)
        return AreaBreakdown(
            switch_area=counts.switch_bits * bit,
            lut_area=counts.lut_bits * bit,
        )

    def proposed_tile(
        self,
        counts: TileCounts,
        n_contexts: int,
        switch_mix: PatternMix,
        distinct_planes: float,
        n_outputs: int = 2,
        sharing_factor: float = 1.0,
        lb_packing_factor: float = 1.0,
        tech: Technology = Technology.CMOS,
    ) -> AreaBreakdown:
        """Proposed tile area.

        ``distinct_planes`` is the measured/expected distinct planes per
        LUT (Fig. 12's memory saving); ``lb_packing_factor`` scales logic
        area by the measured local-vs-global LB-count ratio (Figs. 13-14;
        1.0 = no credit).
        """
        c = self.constants
        sw_bit = self.proposed_switch_bit(switch_mix, n_contexts, sharing_factor, tech)
        switch_area = counts.switch_bits * sw_bit

        # adaptive MCMG-LUT: distinct planes in plain SRAM + RCM selectors
        plane_bits = counts.lut_bits  # bits per full plane set / n_contexts?
        per_plane = counts.lut_bits / n_contexts * n_contexts  # = lut_bits
        sram = distinct_planes / n_contexts * per_plane * c.sram_bit
        select_ses = c.plane_select_ses_per_output * n_outputs
        lut_area = (sram + select_ses * c.se_area(tech)) * lb_packing_factor

        # technology-independent RCM overhead (wires/buffers/P/C): charged
        # on the CMOS-equivalent SE area so FePG substitution cannot
        # shrink it.
        cmos_sw_bit = self.proposed_switch_bit(
            switch_mix, n_contexts, sharing_factor, Technology.CMOS
        )
        cmos_se_area = (
            counts.switch_bits * cmos_sw_bit
            + select_ses * c.se_area(Technology.CMOS)
        )
        overhead = cmos_se_area * c.rcm_overhead
        return AreaBreakdown(switch_area, lut_area, overhead)

    # -- the headline comparison ------------------------------------------------ #
    def compare(
        self,
        counts: TileCounts,
        n_contexts: int,
        switch_mix: PatternMix,
        distinct_planes: float,
        n_outputs: int = 2,
        sharing_factor: float = 1.0,
        lb_packing_factor: float = 1.0,
        tech: Technology = Technology.CMOS,
    ) -> AreaComparison:
        return AreaComparison(
            conventional=self.conventional_tile(counts, n_contexts),
            proposed=self.proposed_tile(
                counts, n_contexts, switch_mix, distinct_planes, n_outputs,
                sharing_factor, lb_packing_factor, tech,
            ),
            technology=tech,
        )

    def paper_operating_point(
        self,
        change_rate: float = 0.05,
        n_contexts: int = 4,
        tech: Technology = Technology.CMOS,
        sharing_factor: float = 2.0,
        lb_packing_factor: float = 1.0,
        lut_change_prob: float | None = None,
        counts: TileCounts | None = None,
    ) -> AreaComparison:
        """Section 5's setting: analytic mix at the stated change rate.

        ``lut_change_prob`` (per-transition probability that a LUT's whole
        table changes) defaults to ``2 x change_rate``: bit changes
        cluster into the few LUTs being re-purposed.
        """
        from repro.arch.params import paper_params

        params = paper_params()
        mix = analytic_pattern_mix(change_rate, n_contexts)
        q = lut_change_prob if lut_change_prob is not None else min(1.0, 2 * change_rate)
        planes = expected_distinct_planes(q, n_contexts)
        c = counts or TileCounts.from_arch(params)
        return self.compare(
            c, n_contexts, mix, planes, params.lut_outputs,
            sharing_factor, lb_packing_factor, tech,
        )


def static_power_model(
    counts: TileCounts,
    n_contexts: int,
    tech: Technology,
    distinct_planes: float | None = None,
) -> float:
    """Relative static power: leaky SRAM bits per tile.

    Conventional: ``n`` SRAM bits per configuration bit.  Proposed CMOS:
    2 bits per SE + distinct-plane SRAM.  Proposed FePG: only the plane
    SRAM leaks (ferroelectric storage is non-volatile and unpowered when
    idle — the paper's static-power claim).
    """
    n = n_contexts
    if distinct_planes is None:
        # conventional device
        return float((counts.switch_bits + counts.lut_bits) * n)
    plane_sram = counts.lut_bits * distinct_planes / n
    if tech is Technology.FEPG:
        return float(plane_sram)
    return float(counts.switch_bits * 2 + plane_sram)
