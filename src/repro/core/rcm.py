"""Reconfigurable context memory (RCM) block — paper Fig. 7.

The RCM is a fine-grained fabric of three primitives:

- **switch elements (SE)** — pass-gate + 2:1 mux + two memory bits
  (:mod:`repro.core.switch_element`),
- **programmable switches (P)** — statically programmed pass-gates that
  join a vertical track to a horizontal track (Fig. 7(b)),
- **input controllers (C)** — programmable inverters on block inputs
  (Fig. 7(c)), used mainly to derive ``~S_j`` from a context-ID bit.

This module models an RCM block *structurally*: components are attached
to named nets and the block is evaluated by relaxation to a fixpoint —
ON pass-gates merge nets, merged groups adopt the value of their driver,
gate signals are recomputed from net values, and the process repeats
until stable.  Contention (two different driver values shorted together)
and oscillation raise :class:`~repro.errors.SimulationError`; this is how
the unit tests prove that synthesized decoders (Fig. 9) are electrically
well-formed, not just logically correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.switch_element import FLOATING, SEConfig, SwitchElement
from repro.errors import CapacityError, ConfigurationError, SimulationError

GND = "GND"
VDD = "VDD"


@dataclass
class InputController:
    """Programmable inverter on a block input (Fig. 7(c)).

    Directed: drives ``out_net`` with ``in_net`` xor ``invert``.
    """

    in_net: int
    out_net: int
    invert: bool = False
    name: str = "C"


@dataclass
class PSwitch:
    """Statically programmed track-joining switch (Fig. 7(b))."""

    a: int
    b: int
    on: bool = False
    name: str = "P"


@dataclass
class PlacedSE:
    """A switch element attached to block nets.

    ``u`` is the variable (mux) input net, or ``None`` when unused; the
    pass-gate connects nets ``a`` and ``b`` when the gate signal is 1.
    """

    element: SwitchElement
    a: int
    b: int
    u: int | None = None

    @property
    def config(self) -> SEConfig:
        return self.element.config


@dataclass
class RCMEvaluation:
    """Result of one block evaluation."""

    net_values: dict[int, int]
    iterations: int

    def value(self, net: int) -> int:
        return self.net_values[net]


class RCMBlock:
    """One reconfigurable-context-memory block.

    Parameters
    ----------
    n_id_bits:
        Context-ID width ``k``; the block exposes input nets ``S0..S{k-1}``
        and (through input controllers) their complements.
    max_ses, max_pswitches, max_controllers:
        Physical capacity; exceeding any raises
        :class:`~repro.errors.CapacityError`.  ``None`` means unbounded
        (useful for synthesis experiments that *measure* required capacity).
    """

    def __init__(
        self,
        n_id_bits: int = 2,
        max_ses: int | None = None,
        max_pswitches: int | None = None,
        max_controllers: int | None = None,
    ) -> None:
        if n_id_bits < 0:
            raise ConfigurationError(f"n_id_bits must be >= 0, got {n_id_bits}")
        self.n_id_bits = n_id_bits
        self.max_ses = max_ses
        self.max_pswitches = max_pswitches
        self.max_controllers = max_controllers

        self._net_names: list[str] = []
        self._net_ids: dict[str, int] = {}
        self.ses: list[PlacedSE] = []
        self.pswitches: list[PSwitch] = []
        self.controllers: list[InputController] = []
        self._inputs: dict[str, int] = {}

        # Power/ground rails are always present.
        self._gnd = self.new_net(GND)
        self._vdd = self.new_net(VDD)

        # Context-ID inputs and their inverted forms (via C controllers).
        self._id_nets: list[int] = []
        self._id_inv_nets: list[int] = []
        for j in range(n_id_bits):
            nid = self.add_input(f"S{j}")
            self._id_nets.append(nid)
            inv = self.new_net(f"~S{j}")
            self._add_controller(nid, inv, invert=True, name=f"C_S{j}")
            self._id_inv_nets.append(inv)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def new_net(self, name: str | None = None) -> int:
        nid = len(self._net_names)
        if name is None:
            name = f"n{nid}"
        if name in self._net_ids:
            raise ConfigurationError(f"duplicate net name {name!r}")
        self._net_names.append(name)
        self._net_ids[name] = nid
        return nid

    def add_input(self, name: str) -> int:
        nid = self.new_net(name)
        self._inputs[name] = nid
        return nid

    def _add_controller(self, in_net: int, out_net: int, invert: bool, name: str) -> InputController:
        if self.max_controllers is not None and len(self.controllers) >= self.max_controllers:
            raise CapacityError(f"RCM block out of input controllers (max {self.max_controllers})")
        c = InputController(in_net, out_net, invert, name)
        self.controllers.append(c)
        return c

    def add_controller(self, in_net: int, invert: bool = True, name: str | None = None) -> int:
        """Attach an input controller; returns its output net."""
        out = self.new_net(name)
        self._add_controller(in_net, out, invert, name or f"C{len(self.controllers)}")
        return out

    def add_pswitch(self, a: int, b: int, on: bool = False) -> PSwitch:
        if self.max_pswitches is not None and len(self.pswitches) >= self.max_pswitches:
            raise CapacityError(f"RCM block out of P switches (max {self.max_pswitches})")
        self._check_net(a)
        self._check_net(b)
        p = PSwitch(a, b, on, name=f"P{len(self.pswitches)}")
        self.pswitches.append(p)
        return p

    def add_se(self, a: int, b: int, u: int | None = None, config: SEConfig | None = None) -> PlacedSE:
        """Place a switch element with pass-gate between nets ``a``/``b``."""
        if self.max_ses is not None and len(self.ses) >= self.max_ses:
            raise CapacityError(f"RCM block out of switch elements (max {self.max_ses})")
        self._check_net(a)
        self._check_net(b)
        if u is not None:
            self._check_net(u)
        cfg = config if config is not None else SEConfig()
        se = PlacedSE(SwitchElement(cfg, name=f"SE{len(self.ses)}"), a=a, b=b, u=u)
        self.ses.append(se)
        return se

    def _check_net(self, nid: int) -> None:
        if not 0 <= nid < len(self._net_names):
            raise ConfigurationError(f"net id {nid} does not exist")

    # ------------------------------------------------------------------ #
    # named accessors
    # ------------------------------------------------------------------ #
    @property
    def gnd(self) -> int:
        return self._gnd

    @property
    def vdd(self) -> int:
        return self._vdd

    def rail(self, value: int) -> int:
        """Net id of the constant-``value`` rail."""
        if value not in (0, 1):
            raise ConfigurationError(f"rail value must be 0/1, got {value!r}")
        return self._vdd if value else self._gnd

    def id_net(self, bit_index: int, inverted: bool = False) -> int:
        """Net carrying context-ID bit ``S_{bit_index}`` (or its complement)."""
        if not 0 <= bit_index < self.n_id_bits:
            raise ConfigurationError(f"ID bit {bit_index} out of range")
        return self._id_inv_nets[bit_index] if inverted else self._id_nets[bit_index]

    def net_name(self, nid: int) -> str:
        return self._net_names[nid]

    @property
    def n_nets(self) -> int:
        return len(self._net_names)

    def se_count(self) -> int:
        return len(self.ses)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        context: int | None = None,
        inputs: dict[str, int] | None = None,
        max_iterations: int | None = None,
    ) -> RCMEvaluation:
        """Relax the block to a fixpoint and return all net values.

        ``context`` sets the ID-bit inputs per Table 2 (``S_j = (ctx>>j)&1``);
        additional user inputs may be given by name in ``inputs``.
        """
        values: list[int] = [FLOATING] * self.n_nets
        driver_values: dict[int, int] = {self._gnd: 0, self._vdd: 1}

        provided = dict(inputs or {})
        if context is not None:
            if not 0 <= context < (1 << self.n_id_bits):
                raise ConfigurationError(
                    f"context {context} out of range for {self.n_id_bits} ID bits"
                )
            for j in range(self.n_id_bits):
                provided.setdefault(f"S{j}", (context >> j) & 1)

        for name, v in provided.items():
            if name not in self._inputs:
                raise ConfigurationError(f"unknown input {name!r}")
            if v not in (0, 1):
                raise ConfigurationError(f"input {name!r} must be 0/1, got {v!r}")
            driver_values[self._inputs[name]] = v

        limit = max_iterations or (4 + 2 * (len(self.ses) + len(self.controllers)))
        for iteration in range(1, limit + 1):
            new_values = self._relax_once(values, driver_values)
            if new_values == values:
                return RCMEvaluation(dict(enumerate(values)), iteration)
            values = new_values
        raise SimulationError(
            f"RCM block did not reach a fixpoint within {limit} iterations "
            "(combinational loop through pass-gates?)"
        )

    def _relax_once(self, values: list[int], driver_values: dict[int, int]) -> list[int]:
        # Input controllers are directed buffers evaluated from current values.
        drivers = dict(driver_values)
        for c in self.controllers:
            src = drivers.get(c.in_net, values[c.in_net])
            if src == FLOATING:
                continue
            drivers[c.out_net] = src ^ 1 if c.invert else src

        # Union nets joined by conducting pass-gates.
        parent = list(range(self.n_nets))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[rx] = ry

        for p in self.pswitches:
            if p.on:
                union(p.a, p.b)
        for se in self.ses:
            u = 0 if se.u is None else values[se.u]
            if se.element.gate_signal(u) == 1:
                union(se.a, se.b)

        # Each connected component adopts its (unique) driver value.
        component_value: dict[int, int] = {}
        for nid, v in drivers.items():
            root = find(nid)
            prev = component_value.get(root)
            if prev is not None and prev != v:
                raise SimulationError(
                    f"contention: nets shorted with conflicting drivers near "
                    f"{self._net_names[nid]!r}"
                )
            component_value[root] = v

        return [component_value.get(find(n), FLOATING) for n in range(self.n_nets)]

    def read_pattern(self, net: int, n_contexts: int | None = None) -> tuple[int, ...]:
        """Sweep all contexts and return the value of ``net`` in each.

        The tuple is indexed by context number; converting with
        :meth:`repro.core.patterns.ContextPattern.from_values` recovers the
        generated configuration-bit pattern.
        """
        n = n_contexts if n_contexts is not None else (1 << self.n_id_bits)
        out = []
        for ctx in range(n):
            out.append(self.evaluate(context=ctx).value(net))
        return tuple(out)

    def utilization(self) -> dict[str, int]:
        """Component usage counters for area accounting."""
        return {
            "ses": len(self.ses),
            "pswitches": len(self.pswitches),
            "controllers": len(self.controllers),
            "nets": self.n_nets,
        }
