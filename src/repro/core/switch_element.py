"""Behavioral model of the RCM switch element (paper Fig. 8).

An SE has two memory bits ``D1``/``D0``, a 2:1 multiplexer and a
pass-gate.  The multiplexer produces the *gate signal*::

    G = U   if D1 == 1        (variable input, Fig. 8 bottom rows)
    G = D0  if D1 == 0        (constant, Fig. 8 top rows)

``U`` is the SE's variable input (typically a context-ID bit, possibly
inverted by an input controller, or another SE's output).  The pass-gate
connects the SE's two routing terminals when ``G == 1``.

SEs are the single primitive of the reconfigurable context memory: used
with ``D1=0`` they are one-bit configuration cells; with ``D1=1`` they
forward/decode context-ID bits; their pass-gates compose into wider
multiplexers (Fig. 9) and diamond switches (Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Signal value used for an undriven/floating node in behavioral sims.
FLOATING = -1


@dataclass
class SEConfig:
    """Programming of one switch element.

    ``d1 == 0`` → G is the constant ``d0``;  ``d1 == 1`` → G follows U.
    """

    d1: int = 0
    d0: int = 0

    def __post_init__(self) -> None:
        if self.d1 not in (0, 1) or self.d0 not in (0, 1):
            raise ConfigurationError(
                f"SE memory bits must be 0/1, got d1={self.d1!r} d0={self.d0!r}"
            )

    @classmethod
    def constant(cls, value: int) -> "SEConfig":
        """Program the SE to output a constant gate signal (Fig. 3 rows)."""
        return cls(d1=0, d0=value)

    @classmethod
    def follow_input(cls) -> "SEConfig":
        """Program the SE so G tracks the variable input U (Fig. 4 rows)."""
        return cls(d1=1, d0=0)

    @property
    def uses_input(self) -> bool:
        return self.d1 == 1

    def memory_bits(self) -> tuple[int, int]:
        return (self.d1, self.d0)


@dataclass
class SwitchElement:
    """One RCM switch element: decoder mux + pass-gate.

    The class is deliberately tiny — large RCM simulations model SEs
    structurally (see :mod:`repro.core.rcm`) and only use
    :meth:`gate_signal` / :meth:`pass_value` as the semantic kernel.
    """

    config: SEConfig = field(default_factory=SEConfig)
    name: str = "SE"

    def gate_signal(self, u: int = 0) -> int:
        """The mux output ``G`` for variable input ``u``.

        ``u`` may be :data:`FLOATING`; a floating U with ``d1=1`` yields a
        floating G (caught by the RCM fixpoint solver as an error if it
        ever controls a pass-gate).
        """
        if self.config.d1 == 0:
            return self.config.d0
        if u == FLOATING:
            return FLOATING
        if u not in (0, 1):
            raise ConfigurationError(f"SE input must be 0/1/FLOATING, got {u!r}")
        return u

    def pass_value(self, a: int, u: int = 0) -> int:
        """Value seen at terminal B when terminal A carries ``a``.

        Returns :data:`FLOATING` when the pass-gate is off (G == 0) or the
        gate itself is floating.
        """
        g = self.gate_signal(u)
        if g == 1:
            return a
        return FLOATING

    def is_on(self, u: int = 0) -> bool:
        """True when the pass-gate conducts under input ``u``."""
        return self.gate_signal(u) == 1


def se_truth_table() -> list[tuple[int, int, int | str, int | str]]:
    """Reproduce Fig. 8's function table as ``(D1, D0, U, G)`` rows.

    ``'U'`` in the G column denotes "follows the variable input".
    """
    rows: list[tuple[int, int, int | str, int | str]] = [
        (0, 0, "x", 0),
        (0, 1, "x", 1),
        (1, 0, "U", "U"),
        (1, 1, "U", "U"),
    ]
    return rows
