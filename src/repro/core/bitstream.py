"""Bitstream extraction: from mapped contexts to per-bit context patterns.

The paper's entire argument rests on the *statistics of configuration
bits across contexts*.  This module turns a multi-context mapping
(placements + routings + LUT contents) into the raw material of those
statistics:

- every routing switch (PASS/BUF edge of the RRG) becomes one
  configuration bit whose context pattern says in which contexts it
  conducts;
- every connection-block switch (PIN edge) likewise;
- every LUT configuration bit (``2**k`` bits × outputs × tile) has the
  pattern of its value across the planes the mapping loads.

Patterns come back as int masks (bit ``c`` = value in context ``c``)
ready for :func:`repro.core.patterns.classify_many`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.geometry import Coord
from repro.arch.params import ArchParams
from repro.arch.rrg import EdgeKind, RoutingResourceGraph
from repro.core.patterns import PatternClass, classify_many
from repro.errors import ConfigurationError
from repro.netlist.dfg import MultiContextProgram
from repro.netlist.netlist import CellKind
from repro.place.placer import Placement
from repro.route.pathfinder import RouteResult


@dataclass
class SwitchPatternSet:
    """Context patterns of the fabric's routing configuration bits.

    ``used`` maps a canonical undirected edge to its pattern mask;
    ``n_total_switches`` counts every programmable switch in the fabric,
    so ``n_total_switches - len(used)`` switches are constant-0 (off in
    every context) — the dominant redundancy class in any real bitstream.
    """

    n_contexts: int
    used: dict[tuple[int, int], int] = field(default_factory=dict)
    n_total_switches: int = 0

    def all_masks(self, include_unused: bool = True) -> list[int]:
        masks = list(self.used.values())
        if include_unused:
            masks.extend([0] * (self.n_total_switches - len(self.used)))
        return masks

    def census(self, include_unused: bool = True) -> dict[PatternClass, int]:
        return classify_many(self.all_masks(include_unused), self.n_contexts)

    def change_fraction(self) -> float:
        """Average fraction of switch bits differing between consecutive
        contexts (cyclic schedule) — the paper's ~5% statistic."""
        if self.n_total_switches == 0 or self.n_contexts == 1:
            return 0.0
        diffs = 0
        for mask in self.used.values():
            for c in range(self.n_contexts):
                prev = (c - 1) % self.n_contexts
                if ((mask >> c) & 1) != ((mask >> prev) & 1):
                    diffs += 1
        return diffs / (self.n_total_switches * self.n_contexts)


def _canonical_edge(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a <= b else (b, a)


def extract_switch_patterns(
    g: RoutingResourceGraph,
    routes: list[RouteResult],
    n_contexts: int | None = None,
) -> SwitchPatternSet:
    """Per-switch context patterns from one routing per context."""
    n = n_contexts if n_contexts is not None else len(routes)
    if len(routes) > n:
        raise ConfigurationError(
            f"{len(routes)} routed contexts exceed n_contexts={n}"
        )
    out = SwitchPatternSet(n_contexts=n)
    # total programmable switches: undirected PASS/BUF pairs + PIN edges
    seen: set[tuple[int, int]] = set()
    total = 0
    for a, edges in enumerate(g.out_edges):
        for b, kind in edges:
            if kind in (EdgeKind.PASS, EdgeKind.BUF):
                key = _canonical_edge(a, b)
                if key not in seen:
                    seen.add(key)
                    total += 1
            elif kind is EdgeKind.PIN:
                total += 1
    out.n_total_switches = total

    for c, rr in enumerate(routes):
        for net in rr.nets.values():
            for a, b in net.edges:
                kind = None
                for nxt, k in g.out_edges[a]:
                    if nxt == b:
                        kind = k
                        break
                if kind in (EdgeKind.PASS, EdgeKind.BUF):
                    key = _canonical_edge(a, b)
                elif kind is EdgeKind.PIN:
                    key = (a, b)
                else:
                    continue
                out.used[key] = out.used.get(key, 0) | (1 << c)
    return out


@dataclass
class LutPatternSet:
    """Context patterns of LUT configuration bits, per tile."""

    n_contexts: int
    lut_bits_per_tile: int
    #: tile -> array of shape (lut_bits,) with the per-bit pattern masks
    tiles: dict[Coord, np.ndarray] = field(default_factory=dict)
    n_total_tiles: int = 0

    def all_masks(self, include_unused: bool = True) -> list[int]:
        masks: list[int] = []
        for arr in self.tiles.values():
            masks.extend(int(m) for m in arr)
        if include_unused:
            unused_tiles = self.n_total_tiles - len(self.tiles)
            masks.extend([0] * (unused_tiles * self.lut_bits_per_tile))
        return masks

    def census(self, include_unused: bool = True) -> dict[PatternClass, int]:
        return classify_many(self.all_masks(include_unused), self.n_contexts)

    def distinct_planes_per_tile(self) -> dict[Coord, int]:
        """Distinct configuration planes each used tile must store."""
        out: dict[Coord, int] = {}
        for tile, arr in self.tiles.items():
            planes = set()
            for c in range(self.n_contexts):
                bits = ((arr >> c) & 1).astype(np.uint8)
                planes.add(bits.tobytes())
            out[tile] = len(planes)
        return out


def extract_lut_patterns(
    program: MultiContextProgram,
    placements: list[Placement],
    params: ArchParams,
) -> LutPatternSet:
    """Per-LUT-bit context patterns from the mapped program.

    Each tile's LUT stores, per context, the truth table of the cell
    placed there (zero-padded to the physical LUT size); bits are
    compared across contexts to form patterns.  Unoccupied contexts
    repeat the tile's previous plane (hardware keeps old contents),
    which is the favourable-and-realistic assumption for redundancy.
    """
    k = params.lut_inputs
    bits_per_output = 1 << k
    lut_bits = params.lut_outputs * bits_per_output
    result = LutPatternSet(
        n_contexts=params.n_contexts,
        lut_bits_per_tile=lut_bits,
        n_total_tiles=params.n_tiles,
    )
    # tile -> per-context table (uint8 array of lut_bits)
    staged: dict[Coord, dict[int, np.ndarray]] = {}
    for c, (netlist, placement) in enumerate(zip(program.contexts, placements)):
        for cell in netlist.cells.values():
            if cell.kind is not CellKind.LUT:
                continue
            coord = placement.cells[cell.name]
            table = cell.table
            if table.n_inputs > k:
                raise ConfigurationError(
                    f"cell {cell.name!r} needs {table.n_inputs} inputs, "
                    f"physical LUT has {k}"
                )
            padded = np.zeros(lut_bits, dtype=np.uint8)
            src = table.to_array()
            # replicate the k'-input table into the 2**k space (don't-care
            # upper inputs), matching how hardware would be programmed
            reps = bits_per_output // src.size
            padded[:bits_per_output] = np.tile(src, reps)
            staged.setdefault(coord, {})[c] = padded

    for coord, per_ctx in staged.items():
        masks = np.zeros(lut_bits, dtype=np.int64)
        last = None
        for c in range(params.n_contexts):
            plane = per_ctx.get(c)
            if plane is None:
                plane = last if last is not None else np.zeros(lut_bits, dtype=np.uint8)
            masks |= plane.astype(np.int64) << c
            last = plane
        result.tiles[coord] = masks
    return result


@dataclass
class BitstreamStats:
    """Combined switch + LUT pattern statistics for one mapped program."""

    switch: SwitchPatternSet
    luts: LutPatternSet

    def combined_census(self) -> dict[PatternClass, int]:
        cs = self.switch.census()
        cl = self.luts.census()
        return {k: cs[k] + cl[k] for k in cs}

    def class_fractions(self) -> dict[PatternClass, float]:
        census = self.combined_census()
        total = sum(census.values())
        if total == 0:
            return {k: 0.0 for k in census}
        return {k: v / total for k, v in census.items()}


def extract_bitstream_stats(
    g: RoutingResourceGraph,
    program: MultiContextProgram,
    placements: list[Placement],
    routes: list[RouteResult],
    params: ArchParams,
) -> BitstreamStats:
    """One-call extraction of the full pattern statistics."""
    return BitstreamStats(
        switch=extract_switch_patterns(g, routes, params.n_contexts),
        luts=extract_lut_patterns(program, placements, params),
    )
