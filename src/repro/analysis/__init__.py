"""Analysis & experiment drivers: redundancy statistics (Table 1),
pattern-class censuses (Figs. 3-5), report rendering, the unified
mapping engine, and the end-to-end experiment flows behind every
benchmark."""

from repro.analysis.engine import DEFAULT_ENGINE, MappingEngine
from repro.analysis.experiments import (
    ExperimentResult,
    map_program,
    run_area_experiment,
    run_full_flow,
)
from repro.analysis.pattern_stats import pattern_class_table, pattern_cost_table
from repro.analysis.redundancy import redundancy_report, table1_view

__all__ = [
    "DEFAULT_ENGINE",
    "ExperimentResult",
    "MappingEngine",
    "map_program",
    "pattern_class_table",
    "pattern_cost_table",
    "redundancy_report",
    "run_area_experiment",
    "run_full_flow",
    "table1_view",
]
