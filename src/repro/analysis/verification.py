"""Equivalence checking between netlists and against configured devices.

The reproduction's trust chain: synthesis → optimization → technology
mapping → placement/routing → device configuration must all preserve
function.  This module provides the checkers the test-suite and flows
lean on:

- :func:`equivalent` — exhaustive for small input counts (bit-parallel,
  64 vectors per word), Monte-Carlo beyond, with a counterexample on
  failure;
- :func:`verify_device` — configured-device vs source-program check for
  every context;
- :class:`Miter` — XOR-miter construction for structural flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fpga import MultiContextFPGA
from repro.errors import SimulationError
from repro.netlist.dfg import MultiContextProgram
from repro.netlist.logic import TruthTable
from repro.netlist.netlist import Netlist
from repro.sim.levelized import LevelizedSimulator
from repro.utils.rng import ensure_rng

#: Exhaustive checking is used up to this many primary inputs (2^18
#: vectors, packed 64/word — fast).
EXHAUSTIVE_LIMIT = 18


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    vectors_checked: int
    exhaustive: bool
    counterexample: dict[str, int] | None = None
    mismatched_output: str | None = None


def _common_io(a: Netlist, b: Netlist) -> tuple[list[str], list[str]]:
    in_a = sorted(c.output for c in a.inputs())
    in_b = sorted(c.output for c in b.inputs())
    if in_a != in_b:
        raise SimulationError(f"input sets differ: {in_a} vs {in_b}")
    out_a = sorted(c.name for c in a.outputs())
    out_b = sorted(c.name for c in b.outputs())
    if out_a != out_b:
        raise SimulationError(f"output sets differ: {out_a} vs {out_b}")
    return in_a, out_a


def equivalent(
    a: Netlist,
    b: Netlist,
    n_random: int = 4096,
    seed: int = 0,
) -> EquivalenceResult:
    """Check combinational equivalence of two netlists.

    Exhaustive when the shared input count is at most
    :data:`EXHAUSTIVE_LIMIT`; otherwise ``n_random`` random vectors.
    """
    inputs, outputs = _common_io(a, b)
    n = len(inputs)
    sim_a = LevelizedSimulator(a)
    sim_b = LevelizedSimulator(b)

    if n <= EXHAUSTIVE_LIMIT:
        total = 1 << n
        words = (total + 63) // 64
        stim: dict[str, np.ndarray] = {}
        lanes = np.arange(total, dtype=np.uint64)
        for j, name in enumerate(inputs):
            bits = (lanes >> np.uint64(j)) & np.uint64(1)
            packed = np.zeros(words, dtype=np.uint64)
            for w in range(words):
                chunk = bits[w * 64 : (w + 1) * 64]
                packed[w] = np.bitwise_or.reduce(
                    chunk << np.arange(chunk.size, dtype=np.uint64)
                ) if chunk.size else np.uint64(0)
            stim[name] = packed
        out_a = sim_a.outputs(stim)
        out_b = sim_b.outputs(stim)
        for oname in outputs:
            diff = out_a[oname] ^ out_b[oname]
            if diff.any():
                w = int(np.nonzero(diff)[0][0])
                lane = int(diff[w]).bit_length() - 1
                vec_index = w * 64 + lane
                cex = {
                    name: (vec_index >> j) & 1 for j, name in enumerate(inputs)
                }
                return EquivalenceResult(False, total, True, cex, oname)
        return EquivalenceResult(True, total, True)

    rng = ensure_rng(seed)
    words = (n_random + 63) // 64
    stim = {
        name: rng.integers(0, 2**63, words, dtype=np.int64).astype(np.uint64)
        for name in inputs
    }
    out_a = sim_a.outputs(stim)
    out_b = sim_b.outputs(stim)
    for oname in outputs:
        diff = out_a[oname] ^ out_b[oname]
        if diff.any():
            w = int(np.nonzero(diff)[0][0])
            lane = int(diff[w]).bit_length() - 1
            cex = {
                name: int((stim[name][w] >> np.uint64(lane)) & np.uint64(1))
                for name in inputs
            }
            return EquivalenceResult(False, words * 64, False, cex, oname)
    return EquivalenceResult(True, words * 64, False)


def assert_equivalent(a: Netlist, b: Netlist, **kwargs) -> None:
    """Raise :class:`SimulationError` with the counterexample on mismatch."""
    result = equivalent(a, b, **kwargs)
    if not result.equivalent:
        raise SimulationError(
            f"netlists differ on output {result.mismatched_output!r} "
            f"at {result.counterexample}"
        )


def verify_device(
    device: MultiContextFPGA,
    program: MultiContextProgram,
    n_vectors: int = 64,
    seed: int = 0,
) -> int:
    """Check every context of a configured device against its source.

    Returns the number of vectors checked; raises on any divergence.
    """
    rng = ensure_rng(seed)
    checked = 0
    for ctx in range(program.n_contexts):
        netlist = program.contexts[ctx]
        names = [c.name for c in netlist.inputs()]
        for _ in range(n_vectors):
            vec = {n: int(rng.integers(2)) for n in names}
            want = netlist.evaluate_outputs(vec)
            got = device.evaluate(ctx, vec)
            if want != got:
                raise SimulationError(
                    f"context {ctx}: device={got} source={want} on {vec}"
                )
            checked += 1
    return checked


class Miter:
    """XOR-miter of two netlists: one output that is 1 iff they differ.

    Useful for flows that want a single satisfiability-style check; the
    miter itself is a plain :class:`Netlist` so any simulator runs it.
    """

    def __init__(self, a: Netlist, b: Netlist) -> None:
        inputs, outputs = _common_io(a, b)
        self.netlist = Netlist(f"miter_{a.name}_{b.name}")
        for name in inputs:
            self.netlist.add_input(name)
        self._splice(a, "A")
        self._splice(b, "B")
        xor = TruthTable.from_function(2, lambda x, y: x ^ y)
        or2 = TruthTable.from_function(2, lambda x, y: x | y)
        diff_nets = []
        for oname in outputs:
            net = f"diff_{oname}"
            self.netlist.add_lut(
                f"{net}_cell",
                [f"A_{self._out_net(a, oname)}", f"B_{self._out_net(b, oname)}"],
                net, xor,
            )
            diff_nets.append(net)
        acc = diff_nets[0]
        for i, net in enumerate(diff_nets[1:]):
            nxt = f"acc_{i}"
            self.netlist.add_lut(f"{nxt}_cell", [acc, net], nxt, or2)
            acc = nxt
        self.netlist.add_output("differ", acc)
        self.netlist.validate()

    @staticmethod
    def _out_net(n: Netlist, oname: str) -> str:
        return n.cells[oname].inputs[0]

    def _splice(self, src: Netlist, prefix: str) -> None:
        for cell in src.luts():
            ins = [
                net if net in {c.output for c in src.inputs()} else f"{prefix}_{net}"
                for net in cell.inputs
            ]
            self.netlist.add_lut(
                f"{prefix}_{cell.name}", ins, f"{prefix}_{cell.output}", cell.table
            )

    def differs_on(self, vector: dict[str, int]) -> bool:
        return self.netlist.evaluate_outputs(vector)["differ"] == 1
