"""End-to-end experiment drivers.

Each benchmark in ``benchmarks/`` is a thin wrapper around a function
here, so results are reproducible from the library API alone:

- :func:`map_program` — synth-to-bitstream mapping of one program
  (place + route per context, share-aware or naive),
- :func:`run_full_flow` — mapping plus functional verification and
  statistics extraction,
- :func:`run_area_experiment` — the Section-5 evaluation: measured
  pattern mixes feeding the area model, proposed vs conventional,
  CMOS and FePG.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.arch.compiled import CompiledRRG
from repro.arch.params import ArchParams
from repro.arch.rrg import RoutingResourceGraph
from repro.core.area_model import (
    AreaComparison,
    AreaModel,
    PatternMix,
    Technology,
    TileCounts,
)
from repro.core.bitstream import BitstreamStats, extract_bitstream_stats
from repro.core.fpga import MultiContextFPGA
from repro.errors import ReproError
from repro.netlist.dfg import MultiContextProgram
from repro.netlist.sharing import pack_global, pack_local
from repro.place.placer import Placement
from repro.route.pathfinder import RouteResult


@dataclass
class MappedProgram:
    """A program fully mapped onto a device."""

    program: MultiContextProgram
    params: ArchParams
    placements: list[Placement]
    routes: list[RouteResult]
    rrg: RoutingResourceGraph
    share_aware: bool

    def stats(self) -> BitstreamStats:
        return extract_bitstream_stats(
            self.rrg, self.program, self.placements, self.routes, self.params
        )

    def reuse_fraction(self) -> float:
        """Fraction of later-context nets that reused an earlier route.

        A program with no later-context nets — single-context, or one
        whose contexts after the first route nothing — offers no reuse
        opportunities at all, so the fraction is defined as 0.0.
        """
        total = reused = 0
        for rr in self.routes[1:]:
            for net in rr.nets.values():
                total += 1
                reused += 1 if net.reused else 0
        if total == 0:
            return 0.0
        return reused / total


def map_program(
    program: MultiContextProgram,
    params: ArchParams | None = None,
    share_aware: bool = True,
    seed: int = 0,
    effort: float = 0.5,
    rrg: RoutingResourceGraph | CompiledRRG | None = None,
) -> MappedProgram:
    """Place and route every context of ``program``.

    Deprecation shim: kept so historical imports keep working, but the
    implementation is :meth:`repro.api.Session.map_program` on the
    process-wide default session — new code should hold a
    :class:`~repro.api.Session` and call that directly.  Repeated calls
    with equal ``params`` share one compiled routing substrate; an
    explicit ``rrg`` (object graph or compiled) bypasses the cache.
    """
    from repro.api.session import default_session

    return default_session().map_program(
        program, params, share_aware=share_aware, seed=seed,
        effort=effort, rrg=rrg,
    )


def _fit_params(program: MultiContextProgram) -> ArchParams:
    """Pick a grid comfortably holding the largest context."""
    biggest = max(
        len(nl.luts()) + len(nl.dffs()) for nl in program.contexts
    )
    io = max(
        len(nl.inputs()) + len(nl.outputs()) for nl in program.contexts
    )
    side = max(3, math.ceil(math.sqrt(biggest * 1.8)))
    io_cap = max(2, math.ceil(io / max(1, 4 * (side - 1))) + 1)
    n_ctx = 1
    while n_ctx < program.n_contexts:
        n_ctx *= 2
    return ArchParams(
        cols=side, rows=side, n_contexts=max(2, n_ctx),
        lut_inputs=4, channel_width=10, io_capacity=io_cap,
    )


@dataclass
class ExperimentResult:
    """Everything a bench prints for one program."""

    name: str
    mapped: MappedProgram
    stats: BitstreamStats
    verified: bool
    comparisons: dict[str, AreaComparison] = field(default_factory=dict)

    @property
    def change_rate(self) -> float:
        return self.stats.switch.change_fraction()


def verify_mapped(mapped: MappedProgram, seed: int = 0, n_vectors: int = 16) -> bool:
    """Functional verification of a mapped program on a configured device.

    Configures a behavioural device from the mapping and checks every
    context against its source netlist on random vectors; raises
    :class:`~repro.errors.SimulationError` on mismatch, returns True
    otherwise.  Shared by :func:`run_full_flow` and the CLI flows so
    verification policy lives in one place.
    """
    device = MultiContextFPGA(mapped.params, build_graph=False)
    device.rrg = mapped.rrg
    device.configure_program(mapped.program, mapped.placements, mapped.routes)
    for c in range(mapped.program.n_contexts):
        device.verify_against_source(c, n_vectors=n_vectors, seed=seed)
    return True


def run_full_flow(
    program: MultiContextProgram,
    params: ArchParams | None = None,
    share_aware: bool = True,
    seed: int = 0,
    verify: bool = True,
) -> ExperimentResult:
    """Map, verify functionally, and extract statistics."""
    mapped = map_program(program, params, share_aware=share_aware, seed=seed)
    stats = mapped.stats()
    verified = False
    if verify:
        verified = verify_mapped(mapped, seed=seed)
    return ExperimentResult(program.name, mapped, stats, verified)


def measured_mixes(stats: BitstreamStats) -> tuple[PatternMix, float]:
    """(switch-bit pattern mix, mean distinct planes) from a bitstream."""
    switch_mix = PatternMix.from_census(stats.switch.census())
    planes = stats.luts.distinct_planes_per_tile()
    mean_planes = (
        sum(planes.values()) / len(planes) if planes else 1.0
    )
    return switch_mix, mean_planes


def run_area_experiment(
    program: MultiContextProgram | None = None,
    params: ArchParams | None = None,
    change_rate: float = 0.05,
    sharing_factor: float = 2.0,
    seed: int = 0,
    measured: bool = True,
) -> dict[str, AreaComparison]:
    """The Section-5 evaluation.

    With a program: map it, measure the pattern mix / plane counts and
    LB packing factor, then evaluate the area model with *measured*
    statistics plugged into the paper's device geometry (6-input
    2-output MCMG-LUTs, W=10 channels with realistic connection-block
    provisioning) — "under a constraint of the same number of contexts".
    Without a program: evaluate at the paper's analytic operating point.
    Returns comparisons for CMOS and FePG.
    """
    from repro.arch.params import paper_params

    model = AreaModel()
    out: dict[str, AreaComparison] = {}
    if program is not None and measured:
        mapped = map_program(program, params, share_aware=True, seed=seed)
        stats = mapped.stats()
        switch_mix, mean_planes = measured_mixes(stats)
        gpack = pack_global(program)
        lpack = pack_local(program)
        packing = (
            lpack.n_lbs / gpack.n_lbs if gpack.n_lbs else 1.0
        )
        n_ctx = mapped.params.n_contexts
        device = paper_params().with_(n_contexts=n_ctx)
        counts = TileCounts.from_arch(device)
        for tech in (Technology.CMOS, Technology.FEPG):
            out[tech.value] = model.compare(
                counts, n_ctx, switch_mix, mean_planes,
                device.lut_outputs, sharing_factor,
                lb_packing_factor=min(1.0, packing), tech=tech,
            )
    else:
        for tech in (Technology.CMOS, Technology.FEPG):
            out[tech.value] = model.paper_operating_point(
                change_rate=change_rate, tech=tech,
                sharing_factor=sharing_factor,
            )
    return out


def sweep_change_rate(
    rates: Sequence[float],
    n_contexts: int = 4,
    sharing_factor: float = 2.0,
) -> list[tuple[float, float, float]]:
    """(rate, cmos ratio, fepg ratio) across change rates — the
    sensitivity curve behind the paper's single 5% point.

    Thin row-tuple adapter over
    :func:`repro.analysis.sweep.sweep_change_rate_points` (the sweep
    subsystem owns the implementation) for table renderers.

    ``n_contexts`` is honored since the sweep-subsystem port; the
    original implementation accepted it but always evaluated at the
    model's 4-context default.
    """
    from repro.analysis.sweep import sweep_change_rate_points

    return [
        (pt.value, pt.cmos_ratio, pt.fepg_ratio)
        for pt in sweep_change_rate_points(
            rates, n_contexts=n_contexts, sharing_factor=sharing_factor
        )
    ]


def sweep_contexts(
    context_counts: Sequence[int],
    change_rate: float = 0.05,
    sharing_factor: float = 2.0,
) -> list[tuple[int, float, float]]:
    """(n_contexts, cmos ratio, fepg ratio): the overhead the RCM attacks
    grows with context count, so the proposed advantage should widen.

    Thin row-tuple adapter over
    :func:`repro.analysis.sweep.sweep_contexts_points`.
    """
    from repro.analysis.sweep import sweep_contexts_points

    return [
        (int(pt.value), pt.cmos_ratio, pt.fepg_ratio)
        for pt in sweep_contexts_points(
            context_counts, change_rate=change_rate,
            sharing_factor=sharing_factor,
        )
    ]
