"""Pattern-class tables (paper Figs. 3-5 and Table 2).

Renders (a) the closed-form 16-pattern classification with per-pattern
decoder cost — the content of Figs. 3, 4, 5 — and (b) measured pattern
histograms from real bitstreams.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.core.decoder_synth import decoder_cost
from repro.core.patterns import (
    ContextPattern,
    PatternClass,
    all_patterns,
    context_id_bits,
)
from repro.utils.tables import TextTable, format_ratio


def context_id_table(n_contexts: int = 4) -> str:
    """Paper Table 2: context-ID bits per context."""
    from repro.utils.bitops import clog2

    k = clog2(n_contexts)
    t = TextTable(
        ["ID bit"] + [f"Context {c}" for c in range(n_contexts)],
        title="Table 2: context-ID encoding",
    )
    for j in range(k):
        t.add_row([f"S{j}"] + [(c >> j) & 1 for c in range(n_contexts)])
    return t.render()


def pattern_class_table(n_contexts: int = 4) -> str:
    """Figs. 3-5: every pattern, its class, and its decoder hardware."""
    t = TextTable(
        ["pattern (C3..C0)", "class", "SEs", "hardware"],
        title=f"Figs. 3-5: the {1 << n_contexts} patterns of a "
              f"{n_contexts}-context configuration bit",
    )
    for p in all_patterns(n_contexts):
        cls = p.classify()
        cost = decoder_cost(p.mask, n_contexts)
        if cls is PatternClass.CONSTANT:
            hw = f"memory bit = {p.value(0)} (Fig. 3)"
        elif cls is PatternClass.LITERAL:
            j, inv = p.literal_form()
            hw = f"wire from {'~' if inv else ''}S{j} (Fig. 4)"
        else:
            hw = "2:1 mux tree over ID bits (Fig. 5)"
        t.add_row(["".join(map(str, p.paper_row())), str(cls), cost, hw])
    return t.render()


def pattern_cost_table(n_contexts: int = 4) -> dict[str, float]:
    """Aggregate Figs. 3-5 numbers used by tests and benches."""
    census: dict[PatternClass, int] = {c: 0 for c in PatternClass}
    cost_sum: dict[PatternClass, int] = {c: 0 for c in PatternClass}
    for p in all_patterns(n_contexts):
        cls = p.classify()
        census[cls] += 1
        cost_sum[cls] += decoder_cost(p.mask, n_contexts)
    return {
        "n_constant": census[PatternClass.CONSTANT],
        "n_literal": census[PatternClass.LITERAL],
        "n_general": census[PatternClass.GENERAL],
        "avg_cost_constant": cost_sum[PatternClass.CONSTANT] / max(1, census[PatternClass.CONSTANT]),
        "avg_cost_literal": cost_sum[PatternClass.LITERAL] / max(1, census[PatternClass.LITERAL]),
        "avg_cost_general": cost_sum[PatternClass.GENERAL] / max(1, census[PatternClass.GENERAL]),
    }


def measured_pattern_histogram(
    masks: Iterable[int], n_contexts: int = 4,
    title: str = "Measured pattern histogram",
) -> str:
    """Histogram of actual pattern masks from a mapped bitstream."""
    counts = Counter(masks)
    total = sum(counts.values())
    t = TextTable(
        ["pattern (C3..C0)", "class", "count", "fraction"], title=title
    )
    for mask, count in counts.most_common():
        p = ContextPattern(mask, n_contexts)
        t.add_row([
            "".join(map(str, p.paper_row())),
            str(p.classify()),
            count,
            format_ratio(count / total if total else 0.0),
        ])
    return t.render()
