"""Redundancy & regularity statistics (paper Section 2, Table 1).

Quantifies, for a mapped multi-context program, exactly the phenomena
Table 1 illustrates:

- *within-switch redundancy*: configuration bits that never change
  (CONSTANT patterns — Table 1's G3, G9),
- *regularity*: bits tracking a context-ID line (LITERAL — G2/G4's
  repeating (0,1) pattern),
- *between-switch redundancy*: distinct switches carrying identical
  patterns (G2 == G4), which decoder banks exploit via sharing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.bitstream import BitstreamStats
from repro.core.patterns import ContextPattern, PatternClass
from repro.utils.tables import TextTable, format_ratio


@dataclass
class RedundancyReport:
    """Measured redundancy statistics of one mapped program."""

    n_bits: int
    constant_fraction: float
    literal_fraction: float
    general_fraction: float
    change_fraction: float
    duplicate_fraction: float
    sharing_factor: float

    def render(self, title: str = "Redundancy & regularity (Table 1 statistics)") -> str:
        t = TextTable(["statistic", "value"], title=title)
        t.add_row(["configuration bits", self.n_bits])
        t.add_row(["constant patterns (Fig. 3)", format_ratio(self.constant_fraction)])
        t.add_row(["literal patterns (Fig. 4)", format_ratio(self.literal_fraction)])
        t.add_row(["general patterns (Fig. 5)", format_ratio(self.general_fraction)])
        t.add_row(["bits changing per switch", format_ratio(self.change_fraction)])
        t.add_row(["bits sharing another bit's pattern", format_ratio(self.duplicate_fraction)])
        t.add_row(["decoder sharing factor", f"{self.sharing_factor:.2f}x"])
        return t.render()


def redundancy_report(stats: BitstreamStats) -> RedundancyReport:
    """Compute the Table-1 statistics from extracted bitstream patterns."""
    census = stats.combined_census()
    total = sum(census.values())
    masks = stats.switch.all_masks() + stats.luts.all_masks()
    counts = Counter(masks)
    # bits whose pattern is carried by at least one other bit
    duplicates = sum(c for c in counts.values() if c > 1)
    nonzero = {m: c for m, c in counts.items() if m != 0}
    sharing = (
        sum(nonzero.values()) / len(nonzero) if nonzero else 1.0
    )
    return RedundancyReport(
        n_bits=total,
        constant_fraction=census[PatternClass.CONSTANT] / total if total else 0.0,
        literal_fraction=census[PatternClass.LITERAL] / total if total else 0.0,
        general_fraction=census[PatternClass.GENERAL] / total if total else 0.0,
        change_fraction=stats.switch.change_fraction(),
        duplicate_fraction=duplicates / total if total else 0.0,
        sharing_factor=sharing,
    )


def table1_view(
    masks: dict[str, int], n_contexts: int = 4,
    title: str = "Table 1: configuration data across contexts",
) -> str:
    """Render named switch patterns in the paper's Table-1 layout."""
    cols = ["switch"] + [f"ctx {c} (C{c})" for c in reversed(range(n_contexts))]
    cols += ["class"]
    t = TextTable(cols, title=title)
    for name, mask in masks.items():
        pat = ContextPattern(mask, n_contexts)
        row = [name, *pat.paper_row(), str(pat.classify())]
        t.add_row(row)
    return t.render()


def paper_table1() -> str:
    """The paper's own Table 1 example, rendered."""
    from repro.core.patterns import table1_patterns

    pats = table1_patterns()
    return table1_view({k: v.mask for k, v in pats.items()})
