"""Architecture design-space exploration.

Classic FPGA-architecture methodology applied to the RCM fabric:

- :func:`minimum_channel_width` — bisect the narrowest channel a
  workload routes on (the routability cost of architecture choices),
- :func:`explore_double_fraction` — sweep the single/double track split
  and report routability + critical path (Fig. 10's design knob),
- :func:`explore_fc` — connection-block flexibility vs wirelength.

Each returns plain rows so benches and notebooks can render them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import ArchParams
from repro.arch.rrg import build_rrg
from repro.errors import RoutingError
from repro.netlist.netlist import Netlist
from repro.place.placer import place
from repro.route.pathfinder import route_context
from repro.route.timing import critical_path


@dataclass
class RoutePoint:
    """One architecture point's routing outcome."""

    routed: bool
    wirelength: int = 0
    critical_path: float = 0.0
    iterations: int = 0


def _try_route(netlist: Netlist, params: ArchParams, seed: int, effort: float) -> RoutePoint:
    g = build_rrg(params)
    pl = place(netlist, params, seed=seed, effort=effort)
    try:
        rr = route_context(g, netlist, pl, max_iterations=25)
    except RoutingError:
        return RoutePoint(False)
    return RoutePoint(
        True,
        wirelength=rr.wirelength(g),
        critical_path=critical_path(g, netlist, rr, pl),
        iterations=rr.iterations,
    )


def minimum_channel_width(
    netlist: Netlist,
    base: ArchParams,
    lo: int = 2,
    hi: int = 24,
    seed: int = 0,
    effort: float = 0.3,
) -> int:
    """Smallest channel width that routes ``netlist`` on ``base``'s grid.

    Standard bisection with a routable upper bound; raises
    :class:`RoutingError` when even ``hi`` fails.
    """
    if not _try_route(netlist, base.with_(channel_width=hi), seed, effort).routed:
        raise RoutingError(f"unroutable even at W={hi}")
    while lo < hi:
        mid = (lo + hi) // 2
        if _try_route(netlist, base.with_(channel_width=mid), seed, effort).routed:
            hi = mid
        else:
            lo = mid + 1
    return hi


def explore_double_fraction(
    netlist: Netlist,
    base: ArchParams,
    fractions: list[float] = (0.0, 0.25, 0.5, 0.75),
    seed: int = 0,
    effort: float = 0.3,
) -> list[tuple[float, RoutePoint]]:
    """Sweep the double-length track share (Fig. 10's knob)."""
    return [
        (f, _try_route(netlist, base.with_(double_fraction=f), seed, effort))
        for f in fractions
    ]


def explore_fc(
    netlist: Netlist,
    base: ArchParams,
    fcs: list[float] = (1.0, 0.5, 0.3),
    seed: int = 0,
    effort: float = 0.3,
) -> list[tuple[float, RoutePoint]]:
    """Sweep connection-block flexibility."""
    return [
        (fc, _try_route(netlist, base.with_(fc_in=fc, fc_out=fc), seed, effort))
        for fc in fcs
    ]
