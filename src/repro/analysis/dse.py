"""Architecture design-space exploration.

Classic FPGA-architecture methodology applied to the RCM fabric:

- :func:`minimum_channel_width` — bisect the narrowest channel a
  workload routes on (the routability cost of architecture choices),
- :func:`explore_double_fraction` — sweep the single/double track split
  and report routability + critical path (Fig. 10's design knob),
- :func:`explore_fc` — connection-block flexibility vs wirelength.

Each returns plain rows so benches and notebooks can render them.

All exploration rides on the compiled sweep subsystem
(:mod:`repro.analysis.sweep`): points are evaluated on the cached
flat-array substrate with placements shared across points that differ
only in routing resources.  Verdicts and wirelengths match the legacy
per-point flow exactly (``tests/analysis/test_sweep.py`` pins the
equivalence).  Pass a :class:`~repro.analysis.sweep.SweepRunner` with
``backend="process"`` to fan grid points out across cores.

Deprecation shim: when no ``runner`` is supplied, these drivers build
one on the :mod:`repro.api` default session's engine — sharing the
facade's compiled-substrate caches while keeping the per-call placement
cache lifetime (see :func:`_default_runner`).  Named-workload sweeps
should prefer ``Session.run(SweepRequest(...))`` directly; these
functions remain for explicit-netlist exploration.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.analysis.sweep import (
    SweepJob,
    SweepPoint,
    SweepRunner,
    channel_width_jobs,
    double_fraction_jobs,
    fc_jobs,
)
from repro.arch.params import ArchParams
from repro.errors import RoutingError
from repro.netlist.netlist import Netlist


def _default_runner() -> SweepRunner:
    """A fresh per-call runner on the facade's shared engine.

    Fresh on purpose: the runner's placement cache holds strong
    references to netlists, so a process-wide runner would grow
    without bound as callers explore distinct netlists — per-call
    runners keep the original "drop the runner, drop the cache"
    lifetime, while the engine (and its compiled-substrate caches)
    stays shared through the facade's default session.
    """
    from repro.api.session import default_session

    return SweepRunner(engine=default_session().engine)


@dataclass
class RoutePoint:
    """One architecture point's routing outcome."""

    routed: bool
    wirelength: int = 0
    critical_path: float = 0.0
    iterations: int = 0


def _as_route_point(pt: SweepPoint) -> RoutePoint:
    return RoutePoint(pt.routed, pt.wirelength, pt.critical_path, pt.iterations)


def _try_route(
    netlist: Netlist,
    params: ArchParams,
    seed: int,
    effort: float,
    runner: SweepRunner | None = None,
) -> RoutePoint:
    """Evaluate one architecture point (compiled engine, pooled scratch)."""
    runner = runner if runner is not None else _default_runner()
    job = SweepJob("point", 0.0, params, netlist, seed, effort)
    return _as_route_point(runner.run([job])[0])


def minimum_channel_width(
    netlist: Netlist,
    base: ArchParams,
    lo: int = 2,
    hi: int = 24,
    seed: int = 0,
    effort: float = 0.3,
    runner: SweepRunner | None = None,
) -> int:
    """Smallest channel width that routes ``netlist`` on ``base``'s grid.

    Standard bisection with a routable upper bound; raises
    :class:`RoutingError` when even ``hi`` fails.  Bisection probes are
    sequential by nature (each depends on the last verdict), but every
    probe reuses the runner's cached placement — the anneal is
    independent of channel width — so only the routing is repeated.
    """
    runner = runner if runner is not None else _default_runner()

    def routed(width: int) -> bool:
        jobs = channel_width_jobs(
            netlist, base, [width], seed=seed, effort=effort
        )
        return runner.run(jobs)[0].routed

    if not routed(hi):
        raise RoutingError(f"unroutable even at W={hi}")
    while lo < hi:
        mid = (lo + hi) // 2
        if routed(mid):
            hi = mid
        else:
            lo = mid + 1
    return hi


def explore_double_fraction(
    netlist: Netlist,
    base: ArchParams,
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    seed: int = 0,
    effort: float = 0.3,
    runner: SweepRunner | None = None,
) -> list[tuple[float, RoutePoint]]:
    """Sweep the double-length track share (Fig. 10's knob)."""
    fractions = list(fractions)
    runner = runner if runner is not None else _default_runner()
    jobs = double_fraction_jobs(netlist, base, fractions, seed=seed, effort=effort)
    return [
        (f, _as_route_point(pt))
        for f, pt in zip(fractions, runner.run(jobs))
    ]


def explore_fc(
    netlist: Netlist,
    base: ArchParams,
    fcs: Sequence[float] = (1.0, 0.5, 0.3),
    seed: int = 0,
    effort: float = 0.3,
    runner: SweepRunner | None = None,
) -> list[tuple[float, RoutePoint]]:
    """Sweep connection-block flexibility."""
    fcs = list(fcs)
    runner = runner if runner is not None else _default_runner()
    jobs = fc_jobs(netlist, base, fcs, seed=seed, effort=effort)
    return [
        (fc, _as_route_point(pt))
        for fc, pt in zip(fcs, runner.run(jobs))
    ]
