"""ASCII floorplan rendering of placements and multi-context occupancy.

Terminal-friendly visualization used by examples and debugging: the
tile grid with placed cells, per-context occupancy maps, and a sharing
overlay showing which tiles hold cells pinned across contexts (the
adaptive-LB payoff made visible).
"""

from __future__ import annotations

from repro.arch.geometry import Coord
from repro.arch.params import ArchParams
from repro.netlist.dfg import MultiContextProgram
from repro.place.placer import Placement


def render_placement(
    placement: Placement,
    params: ArchParams,
    label_width: int = 6,
    title: str | None = None,
) -> str:
    """One context's placement as a grid of cell-name cells.

    Rows print north-to-south (row ``rows-1`` on top); empty tiles show
    dots, I/O pads are annotated on the frame.
    """
    w = label_width
    occupied: dict[Coord, str] = {
        coord: name for name, coord in placement.cells.items()
    }
    lines: list[str] = []
    if title:
        lines.append(title)
    horiz = "+" + "+".join("-" * w for _ in range(params.cols)) + "+"
    for y in reversed(range(params.rows)):
        lines.append(horiz)
        row_cells = []
        for x in range(params.cols):
            name = occupied.get(Coord(x, y), "")
            text = (name[-w:] if name else "." * (w // 2)).center(w)
            row_cells.append(text)
        lines.append("|" + "|".join(row_cells) + "|")
    lines.append(horiz)
    ios = ", ".join(
        f"{n}@({c.x},{c.y}).{p}" for n, (c, p) in sorted(placement.ios.items())
    )
    if ios:
        lines.append(f"io: {ios}")
    return "\n".join(lines)


def render_occupancy(
    placements: list[Placement],
    params: ArchParams,
    title: str = "Multi-context occupancy",
) -> str:
    """Grid where each tile shows which contexts use it.

    ``0``-``9`` single context; ``*`` = several contexts with *the same*
    shared location (the redundancy-aware mapper's pinning); ``#`` =
    used by several contexts with different cells.
    """
    per_tile: dict[Coord, list[tuple[int, str]]] = {}
    for c, pl in enumerate(placements):
        for name, coord in pl.cells.items():
            per_tile.setdefault(coord, []).append((c, name))
    lines = [title]
    for y in reversed(range(params.rows)):
        row = []
        for x in range(params.cols):
            users = per_tile.get(Coord(x, y), [])
            if not users:
                ch = "."
            elif len(users) == 1:
                ch = str(users[0][0] % 10)
            else:
                names = {n for _, n in users}
                ch = "*" if len(names) == 1 else "#"
            row.append(ch)
        lines.append(" ".join(row))
    legend = (
        "legend: digit = single context, * = shared cell pinned across "
        "contexts, # = tile reused by different cells, . = free"
    )
    lines.append(legend)
    return "\n".join(lines)


def occupancy_stats(
    placements: list[Placement], params: ArchParams
) -> dict[str, float]:
    """Numbers behind the overlay: tile usage and sharing fractions."""
    per_tile: dict[Coord, list[str]] = {}
    for pl in placements:
        for name, coord in pl.cells.items():
            per_tile.setdefault(coord, []).append(name)
    used = len(per_tile)
    shared = sum(
        1 for names in per_tile.values()
        if len(names) > 1 and len(set(names)) == 1
    )
    multi = sum(1 for names in per_tile.values() if len(names) > 1)
    return {
        "tiles": params.n_tiles,
        "tiles_used": used,
        "utilization": used / params.n_tiles if params.n_tiles else 0.0,
        "tiles_shared_pinned": shared,
        "tiles_multi_context": multi,
        "pinned_fraction": shared / used if used else 0.0,
    }
