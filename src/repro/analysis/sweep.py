"""Sweep/DSE subsystem: parameter grids as first-class routing jobs.

The design-space experiments — minimum channel width, double-length
track and connection-block (Fc) sweeps, change-rate and context-count
sensitivity — all reduce to the same shape: evaluate a *grid* of
``(ArchParams, netlist, seed)`` points and collect structured results.
This module makes that shape explicit (Lumos-style parameter-space
exploration: points are data, the runner is policy):

- :class:`SweepJob` — one architecture point to evaluate (picklable,
  so grids can be shipped to worker processes);
- :class:`SweepPoint` — the structured outcome (routed, wirelength,
  critical path, iterations), JSON-serializable via
  :meth:`~SweepPoint.to_dict` / :meth:`~SweepPoint.from_dict`;
- :class:`SweepRunner` — executes a grid on the compiled mapping
  engine with a selectable backend;
- grid builders (:func:`channel_width_jobs`,
  :func:`double_fraction_jobs`, :func:`fc_jobs`) and the analytic
  area-model sweeps (:func:`sweep_change_rate_points`,
  :func:`sweep_contexts_points`).

Backend and pool selection
--------------------------
``backend="sequential"`` (default) evaluates points in order, reusing
one leased :class:`~repro.route.pathfinder.RouterScratch` per substrate
through the shared scratch pool — the right choice for small grids and
for bisection, where points depend on earlier outcomes.
``backend="thread"`` overlaps points with a thread pool; routing is
pure-Python CPU work, so under the GIL this only helps when jobs block
(it exists for API uniformity with
:meth:`~repro.analysis.engine.MappingEngine.map_batch`).
``backend="process"`` fans points out to a ``ProcessPoolExecutor`` —
jobs and results are picklable by construction, so this is the one
that beats the GIL for big grids; each worker process warms its own
compiled-RRG cache and scratch pool.  ``workers=None`` sizes parallel
backends to ``os.cpu_count()``.

With ``shared_memory`` enabled (the default; see
:func:`repro.arch.shared.shared_memory_default`), the process backend
publishes compiled substrates through POSIX shared memory whenever a
grid shares one ``ArchParams`` across several points: workers map the
arrays zero-copy (one attach per worker process, done in the pool
initializer) instead of rebuilding the substrate per process.  Points
whose params are unique in the grid still build worker-side — the
parent publishing them first would serialize work the pool could do in
parallel.  Segments are refcounted by the runner's
:class:`~repro.arch.shared.SharedStore` and unlinked on
:meth:`SweepRunner.close` (also wired to a finalizer, so dropping the
runner cleans up).  Rows are bit-identical either way: attached
substrates hold the same arrays the parent built.

Two sweep-level optimisations keep grids cheap without changing any
verdict: the runner caches *placements* across points that share a
placement-relevant configuration (grid size, I/O capacity, seed,
effort — channel width, track mix and Fc are invisible to the placer),
and the compiled-RRG cache shares substrates across points with equal
``ArchParams``.  Every point still routes exactly as the legacy
per-point flow did (same placement seed, same PathFinder schedule), so
compiled sweeps reproduce legacy verdicts and wirelengths — the
equivalence suite in ``tests/analysis/test_sweep.py`` pins this.
"""

from __future__ import annotations

import os
import threading
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass

from repro.arch.params import ArchParams
from repro.errors import RoutingError
from repro.netlist.netlist import Netlist
from repro.place.placer import Placement, place
from repro.route.pathfinder import route_context_compiled
from repro.route.timing import critical_path
from repro.utils.iters import SizedIterator
from repro.utils.profile import PhaseProfiler, profiling, span
from repro.utils.telemetry import Telemetry, collecting
from repro.utils.telemetry import span as tspan

#: PathFinder iteration budget per sweep point.  Matches the legacy
#: per-point flow (``route_context(..., max_iterations=25)``), so sweep
#: verdicts are comparable with historical results.
POINT_MAX_ITERATIONS = 25

_BACKENDS = ("sequential", "thread", "process")

#: stateless, reusable — spares an allocation on every unprofiled point
_NULL_CTX = nullcontext()


@dataclass(frozen=True)
class SweepJob:
    """One architecture point of a sweep grid.

    ``axis``/``value`` name the swept knob (e.g. ``"channel_width"``,
    10); ``params`` is the fully-resolved device configuration.  Jobs
    are immutable and picklable, so a grid can be shipped wholesale to
    worker processes.
    """

    axis: str
    value: float
    params: ArchParams
    netlist: Netlist
    seed: int = 0
    effort: float = 0.3
    max_iterations: int = POINT_MAX_ITERATIONS
    #: wavefront width for the router's *initial* routing pass
    #: (``None`` = sequential).  Verdicts are bit-identical either way
    #: — the wavefront only parallelises provably independent nets.
    route_workers: int | None = None
    #: collect a per-point phase profile (wall-clock — never part of
    #: the row bit-identity contract; see :mod:`repro.utils.profile`)
    profile: bool = False
    #: run/trace id when telemetry is on (``None`` = off).  Workers
    #: bind a :class:`~repro.utils.telemetry.Telemetry` collector per
    #: point and ship its snapshot back inside the row — the channel
    #: that makes spans/counters survive the process backend.
    telemetry: str | None = None


@dataclass
class SweepPoint:
    """Structured outcome of one sweep point."""

    axis: str
    value: float
    routed: bool
    wirelength: int = 0
    critical_path: float = 0.0
    iterations: int = 0
    #: per-phase timings; ``None`` unless profiling was requested
    #: (wall-clock — omitted from serialization so profiled and
    #: unprofiled rows stay comparable)
    profile: dict | None = None
    #: telemetry snapshot (spans + counter deltas); ``None`` unless
    #: the job carried a run id — omitted from serialization so
    #: telemetry never perturbs row bit-identity
    metrics: dict | None = None

    def to_dict(self) -> dict:
        d = {
            "axis": self.axis,
            "value": self.value,
            "routed": self.routed,
            "wirelength": self.wirelength,
            "critical_path": self.critical_path,
            "iterations": self.iterations,
        }
        if self.profile is not None:
            d["profile"] = self.profile
        if self.metrics is not None:
            d["metrics"] = self.metrics
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SweepPoint":
        return cls(
            axis=d["axis"],
            value=d["value"],
            routed=d["routed"],
            wirelength=d.get("wirelength", 0),
            critical_path=d.get("critical_path", 0.0),
            iterations=d.get("iterations", 0),
            profile=d.get("profile"),
            metrics=d.get("metrics"),
        )


@dataclass
class AreaPoint:
    """One analytic area-model sweep point (no routing involved)."""

    axis: str
    value: float
    cmos_ratio: float
    fepg_ratio: float

    def to_dict(self) -> dict:
        return {
            "axis": self.axis,
            "value": self.value,
            "cmos_ratio": self.cmos_ratio,
            "fepg_ratio": self.fepg_ratio,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AreaPoint":
        return cls(
            axis=d["axis"],
            value=d["value"],
            cmos_ratio=d["cmos_ratio"],
            fepg_ratio=d["fepg_ratio"],
        )


def _placement_key(job: SweepJob) -> tuple:
    """Cache key over exactly the inputs the placer reads.

    The placer sees the grid (``cols``/``rows``), the perimeter pad
    budget (``io_capacity``) and the anneal seed/effort — channel
    width, the single/double track mix and Fc only exist in the
    routing graph.  Keying on the netlist *object* (identity hash)
    keeps a strong reference, so ids cannot be recycled under us.
    """
    return (
        job.netlist, job.params.cols, job.params.rows,
        job.params.io_capacity, job.seed, job.effort,
    )


def evaluate_point(
    job: SweepJob, placement: Placement | None = None, engine=None, c=None
) -> SweepPoint:
    """Evaluate one sweep point on the compiled engine.

    Places (unless a cached ``placement`` is supplied), routes over the
    cached *route-only* substrate for ``job.params`` (flat arrays, no
    object graph resident — see
    :func:`repro.arch.compiled.flat_rrg_for`; sweeping dozens of
    configurations on full substrates spends more time in the garbage
    collector than in the router), and extracts the structured outcome.
    An unroutable point is a *result* (``routed=False``), not an error.
    An explicit ``c`` (e.g. a shared-memory attached substrate) skips
    the engine's build cache entirely.
    """
    if c is None:
        if engine is None:
            from repro.analysis.engine import DEFAULT_ENGINE
            engine = DEFAULT_ENGINE
        c = engine.flat(job.params)
    prof = PhaseProfiler() if job.profile else None
    tel = Telemetry(job.telemetry) if job.telemetry else None
    with profiling(prof) if prof is not None else _NULL_CTX, \
            collecting(tel) if tel is not None else nullcontext():
        if placement is None:
            with span("point.place"), tspan("point.place"):
                placement = place(
                    job.netlist, job.params, seed=job.seed, effort=job.effort
                )
        try:
            with span("point.route"), tspan("point.route"):
                rr = route_context_compiled(
                    c, job.netlist, placement,
                    max_iterations=job.max_iterations,
                    workers=job.route_workers,
                )
        except RoutingError:
            return SweepPoint(
                job.axis, job.value, False,
                profile=prof.to_dict() if prof is not None else None,
                metrics=tel.snapshot() if tel is not None else None,
            )
        with span("point.timing"), tspan("point.timing"):
            cp = critical_path(c, job.netlist, rr, placement)
    return SweepPoint(
        job.axis,
        job.value,
        True,
        wirelength=rr.wirelength(c),
        critical_path=cp,
        iterations=rr.iterations,
        profile=prof.to_dict() if prof is not None else None,
        metrics=tel.snapshot() if tel is not None else None,
    )


def _evaluate_shipped(pair: tuple[SweepJob, Placement]) -> SweepPoint:
    """Top-level process-pool entry point (must be picklable)."""
    job, placement = pair
    return evaluate_point(job, placement)


def _evaluate_shipped_shared(item) -> SweepPoint:
    """Process-pool entry point for the shared-memory backend.

    ``item`` is ``(job, placement, handle)`` — ``handle`` a
    :class:`~repro.arch.shared.SharedSubstrate` (attached zero-copy,
    cached per process) or ``None`` for params unique in the grid,
    which fall back to the worker-side ``flat_rrg_for`` build.
    """
    job, placement, handle = item
    c = handle.attach_cached() if handle is not None else None
    return evaluate_point(job, placement, c=c)


class SweepRunner:
    """Executes sweep grids on the shared mapping engine.

    See the module docstring for backend and pool selection.  The
    placement cache lives on the runner, so successive :meth:`run`
    calls (a bisection probing one width at a time, say) keep sharing
    placements; use a fresh runner to drop them.
    """

    def __init__(
        self,
        engine=None,
        backend: str = "sequential",
        workers: int | None = None,
        shared_memory: bool | None = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if engine is None:
            from repro.analysis.engine import DEFAULT_ENGINE
            engine = DEFAULT_ENGINE
        if shared_memory is None:
            from repro.arch.shared import shared_memory_default
            shared_memory = shared_memory_default()
        self.engine = engine
        self.backend = backend
        self.workers = workers
        #: publish substrates (and the yield runner's golden mappings)
        #: over POSIX shared memory on the process backend
        self.shared_memory = shared_memory
        self._store = None
        self._placements: dict[tuple, Placement] = {}
        # concurrent jobs (the service layer's worker pool) share one
        # runner; the lock keeps get-or-create single-flight so equal
        # configurations always receive the *same* Placement object
        self._placements_lock = threading.Lock()

    def store(self):
        """The runner's (lazily created) shared-memory publication
        store; segments it owns are unlinked on :meth:`close`."""
        if self._store is None:
            from repro.arch.shared import SharedStore
            with self._placements_lock:
                if self._store is None:
                    self._store = SharedStore()
        return self._store

    def close(self) -> None:
        """Release the runner's shared-memory publications (idempotent;
        also runs from a finalizer when the runner is dropped)."""
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def placement_for(self, job: SweepJob) -> Placement:
        """The (cached) placement for a job's placement-relevant config."""
        key = _placement_key(job)
        with self._placements_lock:
            pl = self._placements.get(key)
            if pl is None:
                pl = place(
                    job.netlist, job.params, seed=job.seed, effort=job.effort
                )
                self._placements[key] = pl
        return pl

    def pool_width(self, n_items: int) -> int:
        """Effective pool size for ``n_items`` (1 = run sequentially)."""
        if not n_items:
            return 0
        n = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return 1 if self.backend == "sequential" else min(n, n_items)

    def iter_items(self, fn, items: Sequence, initializer=None,
                   initargs=()) -> SizedIterator:
        """Execute ``fn`` over ``items``, yielding results incrementally.

        Results keep the order of ``items`` on every backend: parallel
        backends submit the whole grid up front and yield each result as
        soon as it (and everything before it) is done, so streaming
        consumers see exactly the rows :meth:`map_items` would collect —
        bit-identical, just earlier.  A failing item raises its error
        when its slot is reached.  ``fn`` must be a picklable top-level
        callable for the process backend.  ``initializer``/``initargs``
        warm each pool worker once at start (the shared-memory paths
        attach their segments there); ignored when the grid runs
        sequentially.  The returned iterator is a
        :class:`~repro.utils.iters.SizedIterator` — ``len()`` is the
        total row count, available before any work runs.
        """
        items = list(items)
        return SizedIterator(
            self._iter_items(fn, items, initializer, initargs), len(items)
        )

    def _iter_items(self, fn, items: list, initializer=None, initargs=()):
        if not items:
            return
        n = self.pool_width(len(items))
        if n <= 1:
            for it in items:
                yield fn(it)
            return
        pool_cls = (
            ThreadPoolExecutor if self.backend == "thread"
            else ProcessPoolExecutor
        )
        pool = pool_cls(max_workers=n, initializer=initializer,
                        initargs=initargs)
        try:
            futures = [pool.submit(fn, it) for it in items]
            for f in futures:
                yield f.result()
        finally:
            # an abandoned generator (consumer stopped early) must not
            # block on the rest of the grid: drop pending work instead
            # of the `with` block's shutdown(wait=True)
            pool.shutdown(wait=False, cancel_futures=True)

    def map_items(self, fn, items: Sequence) -> list:
        """Execute ``fn`` over ``items`` on the configured backend.

        The generic executor under :meth:`run`, exposed so other grid
        subsystems (the reliability layer's Monte Carlo yield campaigns
        ride it) inherit the backend/pool semantics without reinventing
        them.  Results keep the order of ``items``; a failing item
        raises its error at collection.  ``fn`` must be a picklable
        top-level callable for the process backend.
        """
        return list(self.iter_items(fn, items))

    def iter_run(self, jobs: Sequence[SweepJob]) -> SizedIterator:
        """Evaluate every job, yielding each :class:`SweepPoint` as it
        completes (in job order) — the streaming form of :meth:`run`.
        Sized: ``len()`` is the grid size."""
        jobs = list(jobs)
        return SizedIterator(self._iter_run(jobs), len(jobs))

    def _iter_run(self, jobs: list):
        if not jobs:
            return
        # placements are computed (and deduplicated) up front in the
        # parent: points differing only in routing resources share one
        # anneal, and worker processes receive ready placements
        pairs = [(job, self.placement_for(job)) for job in jobs]
        if self.backend == "process" and self.pool_width(len(pairs)) > 1:
            if self.shared_memory:
                yield from self._iter_run_shared(pairs)
                return
            yield from self.iter_items(_evaluate_shipped, pairs)
            return
        # sequential/thread (and the process single-worker fallback)
        # evaluate through the runner's own engine, as before map_items
        engine = self.engine
        yield from self.iter_items(
            lambda pair: evaluate_point(pair[0], pair[1], engine), pairs
        )

    def _iter_run_shared(self, pairs: list):
        """Process fan-out with substrates published over shared memory.

        Only params that serve more than one point are published — the
        parent would otherwise serialize substrate builds the workers
        could do in parallel.  Published substrates are attached in the
        pool initializer, so each worker maps each segment exactly once
        (``repro.arch.shared.attach_count`` pins this in the bench).
        """
        counts: dict = {}
        for job, _ in pairs:
            counts[job.params] = counts.get(job.params, 0) + 1
        store = self.store()
        handles = {
            params: store.substrate_for(self.engine.flat(params))
            for params, n in counts.items() if n > 1
        }
        items = [
            (job, pl, handles.get(job.params)) for job, pl in pairs
        ]
        from repro.arch.shared import warm_worker

        warm = tuple(handles.values())
        yield from self.iter_items(
            _evaluate_shipped_shared, items,
            initializer=warm_worker, initargs=(warm,),
        )

    def run(self, jobs: Sequence[SweepJob]) -> list[SweepPoint]:
        """Evaluate every job; results keep the order of ``jobs``."""
        return list(self.iter_run(jobs))


# ------------------------------------------------------------------------- #
# grid builders
# ------------------------------------------------------------------------- #
def channel_width_jobs(
    netlist: Netlist,
    base: ArchParams,
    widths: Sequence[int],
    seed: int = 0,
    effort: float = 0.3,
) -> list[SweepJob]:
    """One job per channel width on ``base``'s grid."""
    return [
        SweepJob("channel_width", w, base.with_(channel_width=w),
                 netlist, seed, effort)
        for w in widths
    ]


def double_fraction_jobs(
    netlist: Netlist,
    base: ArchParams,
    fractions: Sequence[float],
    seed: int = 0,
    effort: float = 0.3,
) -> list[SweepJob]:
    """One job per single/double track split (Fig. 10's knob)."""
    return [
        SweepJob("double_fraction", f, base.with_(double_fraction=f),
                 netlist, seed, effort)
        for f in fractions
    ]


def fc_jobs(
    netlist: Netlist,
    base: ArchParams,
    fcs: Sequence[float],
    seed: int = 0,
    effort: float = 0.3,
) -> list[SweepJob]:
    """One job per connection-block flexibility value (input = output)."""
    return [
        SweepJob("fc", fc, base.with_(fc_in=fc, fc_out=fc),
                 netlist, seed, effort)
        for fc in fcs
    ]


# ------------------------------------------------------------------------- #
# analytic area-model sweeps (no routing; kept with the grid machinery so
# every sweep the CLI exposes lives in one subsystem)
# ------------------------------------------------------------------------- #
def sweep_change_rate_points(
    rates: Sequence[float],
    n_contexts: int = 4,
    sharing_factor: float = 2.0,
) -> list[AreaPoint]:
    """Area ratio vs configuration-change rate — the sensitivity curve
    behind the paper's single 5% operating point."""
    from repro.core.area_model import AreaModel, Technology

    model = AreaModel()
    out = []
    for r in rates:
        cm = model.paper_operating_point(
            change_rate=r, n_contexts=n_contexts,
            tech=Technology.CMOS, sharing_factor=sharing_factor,
        )
        fe = model.paper_operating_point(
            change_rate=r, n_contexts=n_contexts,
            tech=Technology.FEPG, sharing_factor=sharing_factor,
        )
        out.append(AreaPoint("change_rate", r, cm.ratio, fe.ratio))
    return out


def sweep_contexts_points(
    context_counts: Sequence[int],
    change_rate: float = 0.05,
    sharing_factor: float = 2.0,
) -> list[AreaPoint]:
    """Area ratio vs context count: the overhead the RCM attacks grows
    with context count, so the proposed advantage should widen."""
    from repro.arch.params import paper_params
    from repro.core.area_model import (
        AreaModel,
        Technology,
        TileCounts,
        analytic_pattern_mix,
        expected_distinct_planes,
    )

    model = AreaModel()
    out = []
    for n in context_counts:
        mix = analytic_pattern_mix(change_rate, n)
        params = paper_params().with_(n_contexts=n)
        counts = TileCounts.from_arch(params)
        planes = expected_distinct_planes(min(1.0, 2 * change_rate), n)
        cm = model.compare(
            counts, n, mix, planes, params.lut_outputs, sharing_factor,
            tech=Technology.CMOS,
        )
        fe = model.compare(
            counts, n, mix, planes, params.lut_outputs, sharing_factor,
            tech=Technology.FEPG,
        )
        out.append(AreaPoint("n_contexts", n, cm.ratio, fe.ratio))
    return out
