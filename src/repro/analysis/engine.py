"""Unified mapping engine: one compiled substrate, many mapping jobs.

:class:`MappingEngine` is the single entry point the experiment drivers,
the CLI and the benchmarks ride on.  It owns the compiled-RRG build
cache (see :func:`repro.arch.compiled.compiled_rrg_for`), so every job
targeting the same :class:`~repro.arch.params.ArchParams` shares one
flat-array substrate, and it exposes batch mapping with a worker pool:

- :meth:`MappingEngine.map` — place and route one program (what
  :func:`repro.analysis.experiments.map_program` delegates to);
- :meth:`MappingEngine.map_batch` — map many programs concurrently.
  The compiled RRG is read-only during routing, so jobs share it
  safely; each routing job allocates its own scratch buffers.

Choosing ``backend`` and ``workers`` for :meth:`MappingEngine.map_batch`:

- ``backend="thread"`` (default) runs jobs in a thread pool.  Batch
  jobs are pure-Python CPU work, so with the GIL the pool mostly helps
  when jobs block (different grids compiling, I/O in callers) or on
  free-threaded builds; ``workers=1`` (the default) is the safe
  sequential baseline and never slower for a single program.
- ``backend="process"`` fans jobs out to a ``ProcessPoolExecutor`` —
  the one that beats the GIL.  Programs, placements and routes are
  picklable; each worker process builds (and caches) its own compiled
  substrate, and the parent re-binds results to *its* cached substrate,
  so the returned :class:`MappedProgram` objects are indistinguishable
  from thread-backend results.  Worth it when per-job routing time
  dwarfs the ~1-10 ms pickling + process dispatch overhead (big grids,
  many contexts); for tiny jobs stay on threads.

Scratch buffers: all routing entry points lease their Dijkstra scratch
from :data:`repro.route.pathfinder.SCRATCH_POOL`, so sequential batch
jobs reuse one allocation and concurrent jobs hold one each (workers in
a process pool each own a per-process pool).

Routing *within* one program parallelises per context only in
share-unaware mode — share-aware routing reuses earlier contexts'
routes, which is a sequential dependency by construction.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from collections.abc import Sequence

from repro.arch.compiled import (
    CompiledRRG,
    compile_rrg,
    compiled_rrg_for,
    flat_rrg_for,
)
from repro.arch.params import ArchParams
from repro.arch.rrg import RoutingResourceGraph
from repro.place.placer import place_program
from repro.route.pathfinder import route_program_compiled

_BATCH_BACKENDS = ("thread", "process")


def _process_map_job(
    program, params: ArchParams | None, share_aware: bool, seed: int,
    effort: float, route_workers: int | None = None,
):
    """Top-level worker for the process backend (must be picklable).

    Returns ``(params, placements, routes)`` — deliberately *not* the
    :class:`MappedProgram`, so the worker never ships its RRG object
    graph back over the pipe; the parent re-binds the (small) mapping
    artifacts to its own cached substrate.
    """
    from repro.analysis.experiments import _fit_params

    if params is None:
        params = _fit_params(program)
    mapped = MappingEngine().map(
        program, params, share_aware=share_aware, seed=seed, effort=effort,
        route_workers=route_workers,
    )
    return params, mapped.placements, mapped.routes


class MappingEngine:
    """Place-and-route engine sharing one compiled RRG across jobs."""

    def __init__(self, workers: int | None = None) -> None:
        #: default worker count for :meth:`map_batch` (``None`` = 1).
        self.workers = workers

    # -- substrate --------------------------------------------------------- #
    def compiled(self, params: ArchParams) -> CompiledRRG:
        """The (cached) compiled routing substrate for ``params``."""
        return compiled_rrg_for(params)

    def flat(self, params: ArchParams) -> CompiledRRG:
        """The (cached) route-only substrate for ``params``.

        Source-stripped flat arrays: enough to place, route and time a
        sweep point, at a fraction of the resident-object cost of the
        full substrate (see :func:`repro.arch.compiled.flat_rrg_for`).
        Not usable for statistics extraction or verification — those
        flows go through :meth:`compiled`.
        """
        return flat_rrg_for(params)

    # -- single job --------------------------------------------------------- #
    def map(
        self,
        program,
        params: ArchParams | None = None,
        share_aware: bool = True,
        seed: int = 0,
        effort: float = 0.5,
        rrg: RoutingResourceGraph | CompiledRRG | None = None,
        route_workers: int | None = None,
    ):
        """Place and route every context of ``program``.

        Returns a :class:`~repro.analysis.experiments.MappedProgram`.
        ``rrg`` overrides the cached substrate (object graphs are
        lowered on first use); ``route_workers`` parallelises context
        routing in share-unaware mode.
        """
        from repro.analysis.experiments import MappedProgram, _fit_params

        if params is None:
            params = _fit_params(program)
        if rrg is None:
            compiled = self.compiled(params)
        elif isinstance(rrg, CompiledRRG):
            compiled = rrg
        else:
            compiled = compile_rrg(rrg)
        placements = place_program(
            program, params, seed=seed, share_aware=share_aware, effort=effort
        )
        routes = route_program_compiled(
            compiled, program, placements,
            share_aware=share_aware, workers=route_workers,
        )
        return MappedProgram(
            program, params, placements, routes, compiled.source, share_aware
        )

    # -- batch -------------------------------------------------------------- #
    def iter_map_batch(
        self,
        programs: Sequence,
        params: ArchParams | None = None,
        share_aware: bool = True,
        seed: int = 0,
        effort: float = 0.5,
        workers: int | None = None,
        backend: str = "thread",
        route_workers: int | None = None,
    ):
        """Streaming form of :meth:`map_batch`: yield each
        :class:`~repro.analysis.experiments.MappedProgram` as soon as it
        (and everything before it) is done, in ``programs`` order.

        Parallel backends submit the whole batch up front, so the rows
        a streaming consumer sees are exactly what :meth:`map_batch`
        would collect — just earlier.
        """
        if backend not in _BATCH_BACKENDS:
            raise ValueError(
                f"backend must be one of {_BATCH_BACKENDS}, got {backend!r}"
            )
        if params is not None:
            # warm the cache once so parallel jobs never race a build
            self.compiled(params)
        n = workers if workers is not None else self.workers
        if n is None and backend == "process":
            # an explicit process request defaults to all cores (matching
            # SweepRunner) rather than silently degrading to sequential
            n = os.cpu_count() or 1
        jobs = list(programs)
        if not n or n <= 1 or len(jobs) <= 1:
            for p in jobs:
                yield self.map(p, params, share_aware=share_aware,
                               seed=seed, effort=effort,
                               route_workers=route_workers)
            return
        if backend == "process":
            yield from self._iter_map_batch_process(
                jobs, params, share_aware, seed, effort, n, route_workers
            )
            return
        pool = ThreadPoolExecutor(max_workers=min(n, len(jobs)))
        try:
            futures = [
                pool.submit(self.map, p, params, share_aware=share_aware,
                            seed=seed, effort=effort,
                            route_workers=route_workers)
                for p in jobs
            ]
            for f in futures:
                yield f.result()
        finally:
            # don't block an abandoned generator on the rest of the batch
            pool.shutdown(wait=False, cancel_futures=True)

    def map_batch(
        self,
        programs: Sequence,
        params: ArchParams | None = None,
        share_aware: bool = True,
        seed: int = 0,
        effort: float = 0.5,
        workers: int | None = None,
        backend: str = "thread",
        route_workers: int | None = None,
    ) -> list:
        """Map every program, sharing the compiled substrate.

        ``params=None`` auto-fits a grid per program (jobs with equal
        fitted params still share one compiled RRG through the cache).
        ``workers`` (default: the engine's ``workers``) sizes the pool;
        ``1`` or ``None`` maps sequentially — except under
        ``backend="process"``, where an unset worker count defaults to
        all cores (asking for the process pool and getting the GIL
        would be a silent no-op).  ``backend`` picks the pool flavour —
        ``"thread"`` or ``"process"`` (see the module docstring for
        when each wins).  Results keep the order of ``programs``; a
        failing job raises its error at collection, after all jobs
        were submitted.
        """
        return list(self.iter_map_batch(
            programs, params, share_aware=share_aware, seed=seed,
            effort=effort, workers=workers, backend=backend,
            route_workers=route_workers,
        ))

    def _iter_map_batch_process(
        self, jobs: list, params: ArchParams | None, share_aware: bool,
        seed: int, effort: float, n: int, route_workers: int | None = None,
    ):
        """Process-pool batch: ship jobs out, re-bind results locally.

        Workers return ``(fitted params, placements, routes)``; the
        parent attaches each result to its own cached substrate so
        callers see the usual substrate sharing
        (``out[i].rrg is out[j].rrg`` for equal params).
        """
        from repro.analysis.experiments import MappedProgram

        pool = ProcessPoolExecutor(max_workers=min(n, len(jobs)))
        try:
            futures = [
                pool.submit(_process_map_job, p, params, share_aware,
                            seed, effort, route_workers)
                for p in jobs
            ]
            for program, fut in zip(jobs, futures):
                fitted, placements, routes = fut.result()
                compiled = self.compiled(fitted)
                yield MappedProgram(
                    program, fitted, placements, routes,
                    compiled.source, share_aware,
                )
        finally:
            # don't block an abandoned generator on the rest of the batch
            pool.shutdown(wait=False, cancel_futures=True)


#: Shared default engine — what the module-level convenience APIs use,
#: so independent callers still hit one compiled-RRG cache.
DEFAULT_ENGINE = MappingEngine()
