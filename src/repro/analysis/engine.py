"""Unified mapping engine: one compiled substrate, many mapping jobs.

:class:`MappingEngine` is the single entry point the experiment drivers,
the CLI and the benchmarks ride on.  It owns the compiled-RRG build
cache (see :func:`repro.arch.compiled.compiled_rrg_for`), so every job
targeting the same :class:`~repro.arch.params.ArchParams` shares one
flat-array substrate, and it exposes batch mapping with a worker pool:

- :meth:`MappingEngine.map` — place and route one program (what
  :func:`repro.analysis.experiments.map_program` delegates to);
- :meth:`MappingEngine.map_batch` — map many programs concurrently.
  The compiled RRG is read-only during routing, so jobs share it
  safely; each routing job allocates its own scratch buffers.

Choosing ``workers``: batch jobs are pure-Python CPU work, so with the
GIL the pool mostly helps when jobs block (different grids compiling,
I/O in callers) or on free-threaded builds; ``workers=1`` (the default)
is the safe sequential baseline and never slower for a single program.
Routing *within* one program parallelises per context only in
share-unaware mode — share-aware routing reuses earlier contexts'
routes, which is a sequential dependency by construction.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence

from repro.arch.compiled import CompiledRRG, compile_rrg, compiled_rrg_for
from repro.arch.params import ArchParams
from repro.arch.rrg import RoutingResourceGraph
from repro.place.placer import place_program
from repro.route.pathfinder import route_program_compiled


class MappingEngine:
    """Place-and-route engine sharing one compiled RRG across jobs."""

    def __init__(self, workers: int | None = None) -> None:
        #: default worker count for :meth:`map_batch` (``None`` = 1).
        self.workers = workers

    # -- substrate --------------------------------------------------------- #
    def compiled(self, params: ArchParams) -> CompiledRRG:
        """The (cached) compiled routing substrate for ``params``."""
        return compiled_rrg_for(params)

    # -- single job --------------------------------------------------------- #
    def map(
        self,
        program,
        params: ArchParams | None = None,
        share_aware: bool = True,
        seed: int = 0,
        effort: float = 0.5,
        rrg: RoutingResourceGraph | CompiledRRG | None = None,
        route_workers: int | None = None,
    ):
        """Place and route every context of ``program``.

        Returns a :class:`~repro.analysis.experiments.MappedProgram`.
        ``rrg`` overrides the cached substrate (object graphs are
        lowered on first use); ``route_workers`` parallelises context
        routing in share-unaware mode.
        """
        from repro.analysis.experiments import MappedProgram, _fit_params

        if params is None:
            params = _fit_params(program)
        if rrg is None:
            compiled = self.compiled(params)
        elif isinstance(rrg, CompiledRRG):
            compiled = rrg
        else:
            compiled = compile_rrg(rrg)
        placements = place_program(
            program, params, seed=seed, share_aware=share_aware, effort=effort
        )
        routes = route_program_compiled(
            compiled, program, placements,
            share_aware=share_aware, workers=route_workers,
        )
        return MappedProgram(
            program, params, placements, routes, compiled.source, share_aware
        )

    # -- batch -------------------------------------------------------------- #
    def map_batch(
        self,
        programs: Sequence,
        params: ArchParams | None = None,
        share_aware: bool = True,
        seed: int = 0,
        effort: float = 0.5,
        workers: int | None = None,
    ) -> list:
        """Map every program, sharing the compiled substrate.

        ``params=None`` auto-fits a grid per program (jobs with equal
        fitted params still share one compiled RRG through the cache).
        ``workers`` (default: the engine's ``workers``) sizes the
        thread pool; ``1`` or ``None`` maps sequentially.  Results keep
        the order of ``programs``; a failing job raises its error at
        collection, after all jobs were submitted.
        """
        if params is not None:
            # warm the cache once so parallel jobs never race a build
            self.compiled(params)
        n = workers if workers is not None else self.workers
        jobs = list(programs)
        if not n or n <= 1 or len(jobs) <= 1:
            return [
                self.map(p, params, share_aware=share_aware,
                         seed=seed, effort=effort)
                for p in jobs
            ]
        with ThreadPoolExecutor(max_workers=min(n, len(jobs))) as pool:
            futures = [
                pool.submit(self.map, p, params, share_aware=share_aware,
                            seed=seed, effort=effort)
                for p in jobs
            ]
            return [f.result() for f in futures]


#: Shared default engine — what the module-level convenience APIs use,
#: so independent callers still hit one compiled-RRG cache.
DEFAULT_ENGINE = MappingEngine()
