"""Report rendering shared by benches and examples."""

from __future__ import annotations

from repro.core.area_model import AreaComparison
from repro.utils.tables import TextTable, format_ratio


def area_comparison_table(
    comparisons: dict[str, AreaComparison],
    title: str = "Section 5: proposed vs conventional MC-FPGA area",
    paper_reference: dict[str, float] | None = None,
) -> str:
    """Render the headline area table, optionally with paper numbers."""
    ref = paper_reference or {"cmos": 0.45, "fepg": 0.37}
    t = TextTable(
        ["technology", "conventional", "proposed", "ratio", "paper"],
        title=title,
    )
    for tech, cmp in comparisons.items():
        t.add_row([
            tech,
            f"{cmp.conventional.total:.0f} T",
            f"{cmp.proposed.total:.0f} T",
            format_ratio(cmp.ratio),
            format_ratio(ref[tech]) if tech in ref else "-",
        ])
    return t.render()


def breakdown_table(cmp: AreaComparison, title: str = "Area breakdown") -> str:
    t = TextTable(["component", "conventional", "proposed"], title=title)
    t.add_row([
        "switch block",
        f"{cmp.conventional.switch_area:.0f}",
        f"{cmp.proposed.switch_area:.0f}",
    ])
    t.add_row([
        "logic block",
        f"{cmp.conventional.lut_area:.0f}",
        f"{cmp.proposed.lut_area:.0f}",
    ])
    t.add_row([
        "RCM overhead",
        "0",
        f"{cmp.proposed.overhead_area:.0f}",
    ])
    t.add_row(["total", f"{cmp.conventional.total:.0f}", f"{cmp.proposed.total:.0f}"])
    return t.render()


def sweep_table(
    rows: list[tuple], columns: list[str], title: str
) -> str:
    t = TextTable(columns, title=title)
    for row in rows:
        formatted = [
            format_ratio(v) if isinstance(v, float) and 0 <= v <= 1 else v
            for v in row
        ]
        t.add_row(formatted)
    return t.render()
