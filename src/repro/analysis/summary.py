"""One-call reproduction: every headline artifact in a single report.

:func:`reproduce_paper` runs the whole evaluation — pattern censuses,
the Fig. 9 synthesis check, the Figs. 13/14 packing, the Section-5 area
points, and (optionally) the measured workload flow — and returns a
structured result plus a rendered text report.  This is the programmatic
equivalent of running the entire benchmark harness, sized to finish in
seconds, and the engine behind ``examples/reproduce_paper.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.experiments import run_area_experiment, run_full_flow
from repro.analysis.pattern_stats import pattern_cost_table
from repro.analysis.report import area_comparison_table
from repro.core.decoder_synth import synthesize_single
from repro.core.patterns import ContextPattern, PatternClass, class_census
from repro.netlist.dfg import paper_example_program
from repro.netlist.sharing import pack_global, pack_local
from repro.utils.tables import TextTable, format_ratio


@dataclass
class ReproductionCheck:
    """One paper claim and how the reproduction scored it."""

    artifact: str
    paper: str
    measured: str
    passed: bool


@dataclass
class ReproductionReport:
    checks: list[ReproductionCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def add(self, artifact: str, paper: str, measured: str, passed: bool) -> None:
        self.checks.append(ReproductionCheck(artifact, paper, measured, passed))

    def render(self) -> str:
        t = TextTable(
            ["artifact", "paper", "measured", "ok"],
            title="Reproduction scorecard",
        )
        for c in self.checks:
            t.add_row([c.artifact, c.paper, c.measured, "yes" if c.passed else "NO"])
        return t.render()


def reproduce_paper(include_measured_flow: bool = True, seed: int = 7) -> ReproductionReport:
    """Score every headline claim; see EXPERIMENTS.md for the full story."""
    report = ReproductionReport()

    # Figs. 3-5: classification census
    census = class_census(4)
    report.add(
        "Figs. 3-5 pattern census",
        "2 constant / 4 literal / 10 general",
        f"{census[PatternClass.CONSTANT]} / {census[PatternClass.LITERAL]} / "
        f"{census[PatternClass.GENERAL]}",
        (census[PatternClass.CONSTANT], census[PatternClass.LITERAL],
         census[PatternClass.GENERAL]) == (2, 4, 10),
    )

    # Fig. 9: four SEs, electrically correct
    p = ContextPattern.from_paper_row((1, 0, 0, 0))
    block, net, n_ses = synthesize_single(p)
    ok = n_ses == 4 and block.read_pattern(net) == p.values()
    report.add("Fig. 9 decoder for (1,0,0,0)", "4 SEs", f"{n_ses} SEs, verified", ok)

    # per-class costs
    costs = pattern_cost_table(4)
    report.add(
        "decoder cost per class",
        "1 / 1 / mux tree",
        f"{costs['avg_cost_constant']:.0f} / {costs['avg_cost_literal']:.0f} / "
        f"{costs['avg_cost_general']:.0f} SEs",
        costs["avg_cost_general"] == 4.0,
    )

    # Figs. 13-14: packing
    prog = paper_example_program()
    g, l = pack_global(prog), pack_local(prog)
    report.add(
        "Figs. 13-14 LB packing", "3 LBs -> 2 LBs",
        f"{g.n_lbs} LBs -> {l.n_lbs} LBs",
        (g.n_lbs, l.n_lbs) == (3, 2),
    )

    # Section 5: analytic operating point
    out = run_area_experiment(measured=False)
    cmos, fepg = out["cmos"].ratio, out["fepg"].ratio
    report.add(
        "Section 5 area (CMOS)", "45%", format_ratio(cmos),
        abs(cmos - 0.45) < 0.02,
    )
    report.add(
        "Section 5 area (FePG)", "37%", format_ratio(fepg),
        abs(fepg - 0.37) < 0.02,
    )

    if include_measured_flow:
        from repro.netlist.techmap import tech_map
        from repro.workloads.generators import ripple_adder
        from repro.workloads.multicontext import mutated_program

        base = tech_map(ripple_adder(4), k=4)
        program = mutated_program(base, n_contexts=4, fraction=0.05, seed=seed)
        flow = run_full_flow(program, seed=seed)
        report.add(
            "end-to-end flow", "functional equivalence",
            f"verified={flow.verified}, change rate "
            f"{format_ratio(flow.change_rate)}",
            flow.verified and flow.change_rate < 0.05,
        )
        fr = flow.stats.class_fractions()
        report.add(
            "measured redundancy", "<5% of bits change (assumed)",
            f"constant fraction {format_ratio(fr[PatternClass.CONSTANT])}",
            fr[PatternClass.CONSTANT] > 0.9,
        )
    return report
