"""repro — reproduction of "Architecture of a Multi-Context FPGA Using
Reconfigurable Context Memory" (Chong, Ogata, Hariyama, Kameyama,
IPDPS 2005).

The package splits into:

- :mod:`repro.core` — the paper's contribution: context-pattern algebra
  (Figs. 3-5), switch elements (Fig. 8), the reconfigurable context
  memory (Fig. 7), decoder synthesis (Fig. 9), MCMG-LUTs (Fig. 12),
  adaptive logic blocks (Figs. 13-14), FePGs (Fig. 15), the full device
  and the Section-5 area model.
- :mod:`repro.arch` — island-style fabric: parameters, wire segmentation
  (double-length lines, Fig. 10), routing-resource graph.
- :mod:`repro.netlist` — truth tables, netlists, DFGs, expression
  synthesis, k-LUT technology mapping, cross-context sharing.
- :mod:`repro.place` / :mod:`repro.route` — simulated-annealing placer
  and PathFinder router with cross-context route reuse.
- :mod:`repro.sim` — levelized, event-driven and multi-context
  (DPGA-schedule) simulators.
- :mod:`repro.workloads` — circuit generators and multi-context
  workloads with controllable redundancy.
- :mod:`repro.analysis` — redundancy statistics, pattern censuses, and
  the experiment drivers behind every benchmark.
"""

from repro.core import (
    AdaptiveLogicBlock,
    AreaConstants,
    AreaModel,
    ContextPattern,
    DecoderBank,
    MCMGGeometry,
    MCMGLut,
    MultiContextFPGA,
    PatternClass,
    RCMBlock,
    RCMSwitchBlock,
    SEConfig,
    SwitchElement,
    Technology,
    analytic_pattern_mix,
    class_census,
    decoder_cost,
)
from repro.arch import ArchParams
from repro.arch.params import conventional_params, paper_params
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AdaptiveLogicBlock",
    "ArchParams",
    "AreaConstants",
    "AreaModel",
    "ContextPattern",
    "DecoderBank",
    "MCMGGeometry",
    "MCMGLut",
    "MultiContextFPGA",
    "PatternClass",
    "RCMBlock",
    "RCMSwitchBlock",
    "ReproError",
    "SEConfig",
    "SwitchElement",
    "Technology",
    "analytic_pattern_mix",
    "class_census",
    "conventional_params",
    "decoder_cost",
    "paper_params",
    "__version__",
]
