"""repro — reproduction of "Architecture of a Multi-Context FPGA Using
Reconfigurable Context Memory" (Chong, Ogata, Hariyama, Kameyama,
IPDPS 2005).

The package splits into:

- :mod:`repro.core` — the paper's contribution: context-pattern algebra
  (Figs. 3-5), switch elements (Fig. 8), the reconfigurable context
  memory (Fig. 7), decoder synthesis (Fig. 9), MCMG-LUTs (Fig. 12),
  adaptive logic blocks (Figs. 13-14), FePGs (Fig. 15), the full device
  and the Section-5 area model.
- :mod:`repro.arch` — island-style fabric: parameters, wire segmentation
  (double-length lines, Fig. 10), routing-resource graph, and its
  *compiled* flat-array form (:mod:`repro.arch.compiled`): CSR
  adjacency plus node-attribute arrays, built once per
  :class:`ArchParams` through an LRU build cache and shared by every
  mapping job on the same device.
- :mod:`repro.netlist` — truth tables, netlists, DFGs, expression
  synthesis, k-LUT technology mapping, cross-context sharing.
- :mod:`repro.place` / :mod:`repro.route` — simulated-annealing placer
  (flat coordinate maps, cached net bounding boxes, precomputed
  per-grid distance tables) and PathFinder router with cross-context
  route reuse.  Routing runs on the compiled RRG: array Dijkstra with
  epoch-stamped scratch buffers and per-net bounding-box pruning; the
  original object-graph router survives as
  ``route_context_legacy``/``route_program_legacy`` and the public
  entry points are thin adapters, so both paths produce identical
  routes (pinned by the equivalence test suite).
- :mod:`repro.sim` — levelized, event-driven and multi-context
  (DPGA-schedule) simulators.
- :mod:`repro.workloads` — circuit generators and multi-context
  workloads with controllable redundancy.
- :mod:`repro.analysis` — redundancy statistics, pattern censuses, the
  unified :class:`~repro.analysis.engine.MappingEngine`
  (``map_batch(programs, params, workers=N)`` shares one compiled RRG
  across jobs and routes independent contexts in parallel), and the
  experiment drivers behind every benchmark.
- :mod:`repro.api` — the public facade: typed requests/results with a
  versioned JSON contract, the :class:`~repro.api.Session`
  (``run``/``stream``/``run_spec``) and declarative
  :class:`~repro.api.ExperimentSpec` campaigns.  External harnesses
  and the CLI both ride this surface.

Picking ``workers``: share-aware routing is sequential across contexts
by construction (later contexts adopt earlier routes), so parallelism
applies to share-unaware contexts and to independent batch jobs.  Under
the GIL, ``workers=1`` is the safe default; raise it for batch sweeps
on free-threaded builds or when jobs are I/O-bound.
"""

from repro.core import (
    AdaptiveLogicBlock,
    AreaConstants,
    AreaModel,
    ContextPattern,
    DecoderBank,
    MCMGGeometry,
    MCMGLut,
    MultiContextFPGA,
    PatternClass,
    RCMBlock,
    RCMSwitchBlock,
    SEConfig,
    SwitchElement,
    Technology,
    analytic_pattern_mix,
    class_census,
    decoder_cost,
)
from repro.arch import ArchParams
from repro.arch.params import conventional_params, paper_params
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AdaptiveLogicBlock",
    "ArchParams",
    "AreaConstants",
    "AreaModel",
    "ContextPattern",
    "DecoderBank",
    "MCMGGeometry",
    "MCMGLut",
    "MultiContextFPGA",
    "PatternClass",
    "RCMBlock",
    "RCMSwitchBlock",
    "ReproError",
    "SEConfig",
    "SwitchElement",
    "Technology",
    "analytic_pattern_mix",
    "class_census",
    "conventional_params",
    "decoder_cost",
    "paper_params",
    "__version__",
]
