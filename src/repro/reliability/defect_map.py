"""Physical defect models over the compiled routing fabric.

The behavioral fault layer (:mod:`repro.core.defects`) answers "what
does a stuck SE or a flipped plane bit do to a *configured* device".
This module models the other reliability axis the paper leaves open:
**manufacturing defects in the fabric itself** — the classic MC-FPGA
yield question.  A :class:`DefectMap` is one die's worth of defects,
sampled from a seeded model over a :class:`~repro.arch.compiled.CompiledRRG`
and lowered to the arrays the compiled router consumes directly:

- **wire defects** — a CHANX/CHANY segment is open/shorted; the node
  becomes unroutable (``node_ok`` mask);
- **switch defects** — one programmable switch (PASS/BUF/PIN edge) is
  dead; the CSR edge becomes untraversable (``edge_ok`` mask) while the
  wires it joined stay usable through their other switches;
- **logic-site defects** — a tile's LB is broken; its logical
  SOURCE/SINK nodes are masked and the tile lands in :attr:`bad_tiles`,
  which the placer's ``forbidden`` parameter consumes during re-place
  repair.

Two spatial models share the same expected defect count per category:

- ``uniform`` — every candidate fails independently with probability
  ``rate`` (random point defects);
- ``clustered`` — the same number of defects is drawn in spatial
  clusters around random tile centers (lithography/particle damage is
  famously clustered, which is kinder to yield than independent
  defects at equal density — the classic negative-binomial yield
  observation the Monte Carlo campaigns can reproduce).

Maps are cheap per trial: candidate index arrays are cached on the
substrate (see ``CompiledRRG.wire_node_ids`` and friends), so sampling
is a handful of vectorised draws, not a graph walk.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.arch.compiled import CompiledRRG
from repro.arch.geometry import Coord
from repro.utils.rng import ensure_rng

#: Recognised spatial models.
DEFECT_MODELS = ("uniform", "clustered")

#: Clustered-model defaults: cluster span (Manhattan tile radius) and
#: expected defects per cluster.
CLUSTER_RADIUS = 2
CLUSTER_SIZE = 6


class DefectMap:
    """One die's defects, lowered to router/placer-ready masks.

    Build with :meth:`sample` (seeded statistical models) or
    :meth:`from_defects` (explicit resources, for tests and targeted
    what-if experiments).  Instances are immutable in spirit: the
    router and repair ladder only ever read them.
    """

    __slots__ = (
        "params",
        "n_nodes",
        "n_edges",
        "model",
        "rate",
        "seed",
        "node_ok",
        "_node_ok_bytes",
        "_edge_ok_bytes",
        "wire_defects",
        "switch_defects",
        "bad_tiles",
        "bad_edge_pairs",
    )

    def __init__(
        self,
        c: CompiledRRG,
        wire_defects: Sequence[int],
        switch_defects: Sequence[int],
        bad_tiles: Iterable[tuple[int, int]],
        model: str = "explicit",
        rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.params = c.params
        self.n_nodes = c.n_nodes
        self.n_edges = c.n_edges
        self.model = model
        self.rate = rate
        self.seed = seed
        self.wire_defects = tuple(sorted(int(n) for n in wire_defects))
        self.switch_defects = tuple(sorted(int(e) for e in switch_defects))
        self.bad_tiles = frozenset(
            Coord(int(x), int(y)) for x, y in bad_tiles
        )

        node_ok = np.ones(c.n_nodes, dtype=bool)
        if self.wire_defects:
            node_ok[np.asarray(self.wire_defects, dtype=np.int64)] = False
        if self.bad_tiles:
            # a dead LB loses its logical endpoints; routes never pass
            # *through* SOURCE/SINK nodes, so this only bites nets that
            # terminate at the dead site (i.e. a blocked placement)
            dead = {(t.x, t.y) for t in self.bad_tiles}
            for index in (c.lb_source, c.lb_sink):
                for (x, y, _pin), nid in index.items():
                    if (x, y) in dead:
                        node_ok[nid] = False
        self.node_ok = node_ok
        self._node_ok_bytes: bytes | None = None
        self._edge_ok_bytes: bytes | None = None

        if self.switch_defects:
            eidx = np.asarray(self.switch_defects, dtype=np.int64)
            src = c.edge_src_ids()
            dst = c.edge_dst
            self.bad_edge_pairs = frozenset(
                (int(src[e]), int(dst[e])) for e in eidx.tolist()
            )
        else:
            self.bad_edge_pairs = frozenset()

    @property
    def node_ok_bytes(self) -> bytes:
        """``node_ok`` as an immutable byte mask (the router's defect
        floor), built lazily — trials the ladder clears at NONE level
        never route, so they never pay the copy."""
        if self._node_ok_bytes is None:
            self._node_ok_bytes = self.node_ok.tobytes()
        return self._node_ok_bytes

    @property
    def edge_ok_bytes(self) -> bytes | None:
        """Per-CSR-edge usability mask, ``None`` without switch defects
        (the router then keeps its leaner no-edge-test loop)."""
        if not self.switch_defects:
            return None
        if self._edge_ok_bytes is None:
            edge_ok = np.ones(self.n_edges, dtype=bool)
            edge_ok[np.asarray(self.switch_defects, dtype=np.int64)] = False
            self._edge_ok_bytes = edge_ok.tobytes()
        return self._edge_ok_bytes

    @classmethod
    def from_lowered(
        cls,
        c: CompiledRRG,
        node_ok: np.ndarray,
        wire_defects: Sequence[int],
        switch_defects: Sequence[int],
        bad_tiles: Iterable[tuple[int, int]],
        model: str = "uniform",
        rate: float = 0.0,
        seed: int = 0,
    ) -> "DefectMap":
        """Rebuild a map from an already-lowered ``node_ok`` mask.

        The shared-memory trial path publishes each trial's node mask
        once (parent-side) and workers attach a read-only view; this
        constructor wraps such a view without re-sampling or re-lowering
        — the published mask already folds wire and logic-site defects.
        The small derived pieces (``bad_edge_pairs``, lazily the edge
        byte mask) are rebuilt from the defect id lists, exactly as the
        eager constructor would.
        """
        dm = cls.__new__(cls)
        dm.params = c.params
        dm.n_nodes = c.n_nodes
        dm.n_edges = c.n_edges
        dm.model = model
        dm.rate = rate
        dm.seed = seed
        dm.wire_defects = tuple(sorted(int(n) for n in wire_defects))
        dm.switch_defects = tuple(sorted(int(e) for e in switch_defects))
        dm.bad_tiles = frozenset(
            Coord(int(x), int(y)) for x, y in bad_tiles
        )
        dm.node_ok = node_ok
        dm._node_ok_bytes = None
        dm._edge_ok_bytes = None
        if dm.switch_defects:
            eidx = np.asarray(dm.switch_defects, dtype=np.int64)
            src = c.edge_src_ids()
            dst = c.edge_dst
            dm.bad_edge_pairs = frozenset(
                (int(src[e]), int(dst[e])) for e in eidx.tolist()
            )
        else:
            dm.bad_edge_pairs = frozenset()
        return dm

    # -- construction ------------------------------------------------------- #
    @classmethod
    def sample(
        cls,
        c: CompiledRRG,
        rate: float,
        seed: int | np.random.Generator | None = 0,
        model: str = "uniform",
        wire_rate: float | None = None,
        switch_rate: float | None = None,
        logic_rate: float | None = None,
        cluster_radius: int = CLUSTER_RADIUS,
        cluster_size: int = CLUSTER_SIZE,
    ) -> "DefectMap":
        """Draw one die's defects from a seeded statistical model.

        ``rate`` is the per-resource defect probability, applied to all
        three categories unless overridden (``wire_rate`` /
        ``switch_rate`` / ``logic_rate``).  ``model="clustered"`` keeps
        the expected counts but draws spatially-correlated defects (see
        the module docstring).  Sampling is deterministic per seed, and
        independent of which process runs it — the compiled substrate
        (and thus every candidate index) is a pure function of
        ``ArchParams``.
        """
        if model not in DEFECT_MODELS:
            raise ValueError(
                f"model must be one of {DEFECT_MODELS}, got {model!r}"
            )
        rng = ensure_rng(seed)
        seed_val = seed if isinstance(seed, (int, np.integer)) else -1
        w_rate = rate if wire_rate is None else wire_rate
        s_rate = rate if switch_rate is None else switch_rate
        l_rate = rate if logic_rate is None else logic_rate

        wires = c.wire_node_ids()
        switches = c.switch_edge_ids()
        tiles = c.logic_tiles()
        if model == "uniform":
            wire_hit = wires[rng.random(len(wires)) < w_rate]
            switch_hit = switches[rng.random(len(switches)) < s_rate]
            tile_draw = rng.random(len(tiles))
            tile_hit = [t for t, u in zip(tiles, tile_draw) if u < l_rate]
        else:
            xlo, ylo = c.xlo_np, c.ylo_np
            wire_hit = _clustered_pick(
                rng, wires, xlo[wires], ylo[wires], w_rate,
                c.params, cluster_radius, cluster_size,
            )
            esrc = c.edge_src_ids()[switches]
            switch_hit = _clustered_pick(
                rng, switches, xlo[esrc], ylo[esrc], s_rate,
                c.params, cluster_radius, cluster_size,
            )
            tile_ids = np.arange(len(tiles), dtype=np.int64)
            tx = np.array([t[0] for t in tiles], dtype=np.int64)
            ty = np.array([t[1] for t in tiles], dtype=np.int64)
            tile_hit_ids = _clustered_pick(
                rng, tile_ids, tx, ty, l_rate,
                c.params, cluster_radius, cluster_size,
            )
            tile_hit = [tiles[i] for i in tile_hit_ids.tolist()]
        return cls(
            c, wire_hit.tolist(), switch_hit.tolist(), tile_hit,
            model=model, rate=rate, seed=int(seed_val),
        )

    @classmethod
    def from_defects(
        cls,
        c: CompiledRRG,
        wire_nodes: Sequence[int] = (),
        switch_edges: Sequence[int] = (),
        logic_tiles: Iterable[tuple[int, int]] = (),
    ) -> "DefectMap":
        """Explicit defect list (tests, targeted what-if experiments)."""
        return cls(c, wire_nodes, switch_edges, logic_tiles)

    # -- queries ------------------------------------------------------------ #
    @property
    def is_clean(self) -> bool:
        """True when the die carries no defect at all."""
        return (
            not self.wire_defects
            and not self.switch_defects
            and not self.bad_tiles
        )

    @property
    def n_defects(self) -> int:
        return (
            len(self.wire_defects)
            + len(self.switch_defects)
            + len(self.bad_tiles)
        )

    def to_dict(self) -> dict:
        """JSON-ready summary (counts, not raw ids — campaigns aggregate
        thousands of maps)."""
        return {
            "model": self.model,
            "rate": self.rate,
            "seed": self.seed,
            "wire_defects": len(self.wire_defects),
            "switch_defects": len(self.switch_defects),
            "logic_defects": len(self.bad_tiles),
            "total_defects": self.n_defects,
        }

    def describe(self) -> str:
        return (
            f"DefectMap[{self.model}] rate={self.rate}: "
            f"{len(self.wire_defects)} wires, "
            f"{len(self.switch_defects)} switches, "
            f"{len(self.bad_tiles)} logic sites"
        )


def _clustered_pick(
    rng: np.random.Generator,
    candidates: np.ndarray,
    cand_x: np.ndarray,
    cand_y: np.ndarray,
    rate: float,
    params,
    cluster_radius: int,
    cluster_size: int,
) -> np.ndarray:
    """Spatially-clustered defect draw with uniform-matched expectation.

    Draws ``k ~ Binomial(n, rate)`` total defects (the same marginal
    count as the uniform model), then fills them cluster by cluster:
    pick a random tile center, knock out up to ``cluster_size`` random
    candidates within Manhattan distance ``cluster_radius``.  A bounded
    retry count guards degenerate geometries; any remainder falls back
    to uniform picks so the expected count always holds.
    """
    n = len(candidates)
    if n == 0 or rate <= 0.0:
        return candidates[:0]
    k = int(rng.binomial(n, min(rate, 1.0)))
    if k == 0:
        return candidates[:0]
    chosen: set[int] = set()  # positions into ``candidates``
    attempts = 0
    while len(chosen) < k and attempts < 64 * (1 + k // max(1, cluster_size)):
        attempts += 1
        cx = int(rng.integers(0, params.cols + 1))
        cy = int(rng.integers(0, params.rows + 1))
        near = np.flatnonzero(
            (np.abs(cand_x - cx) + np.abs(cand_y - cy)) <= cluster_radius
        )
        near = near[~np.isin(near, np.fromiter(chosen, dtype=np.int64,
                                               count=len(chosen)))] \
            if chosen else near
        if len(near) == 0:
            continue
        take = min(int(rng.integers(1, cluster_size + 1)), k - len(chosen),
                   len(near))
        picked = rng.choice(near, size=take, replace=False)
        chosen.update(int(p) for p in picked)
    if len(chosen) < k:  # degenerate geometry: top up uniformly
        rest = np.setdiff1d(
            np.arange(n), np.fromiter(chosen, dtype=np.int64,
                                      count=len(chosen)),
        )
        extra = rng.choice(rest, size=min(k - len(chosen), len(rest)),
                           replace=False)
        chosen.update(int(p) for p in extra)
    idx = np.fromiter(chosen, dtype=np.int64, count=len(chosen))
    idx.sort()
    return candidates[idx]
