"""Defect-avoidance mapping: the repair escalation ladder.

Given a *golden* (defect-free) mapping of a workload and one die's
:class:`~repro.reliability.defect_map.DefectMap`, decide whether the die
can still run the workload — spending as little mapping effort as the
defects demand:

0. **NONE** — the golden placement avoids every dead logic site and the
   golden routes touch no dead wire/switch: the die works as-is.
1. **ROUTE_AROUND** — placement is fine but some routes cross defects:
   reroute *only* the dirty nets, seeding the router's reuse bank with
   the healthy routes (they are adopted as-is and only ripped up if the
   detours create congestion).
2. **REROUTE** — route-around could not converge: rip everything up and
   reroute the whole context under the defect mask.
3. **REPLACE** — the placement itself sits on dead logic (or rerouting
   is hopeless around the current pin positions): re-place with the
   dead tiles forbidden, then reroute.
4. **FAIL** — even re-place+reroute cannot map the workload; the die is
   scrap for this workload.

The ladder is exactly the knob manufacturers trade CAD time against
yield with, so :class:`RepairOutcome` records which rung succeeded plus
the quality cost (wirelength / critical-path overhead vs the golden
mapping) of surviving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.arch.compiled import CompiledRRG
from repro.errors import PlacementError, RoutingError
from repro.netlist.netlist import Netlist
from repro.place.placer import Placement, place
from repro.reliability.defect_map import DefectMap
from repro.route.pathfinder import (
    RouteResult,
    endpoint_signature,
    route_context_compiled,
)
from repro.route.timing import critical_path


class RepairLevel(enum.IntEnum):
    """Rungs of the escalation ladder, cheapest first."""

    NONE = 0
    ROUTE_AROUND = 1
    REROUTE = 2
    REPLACE = 3
    FAIL = 4


@dataclass
class GoldenMapping:
    """Defect-free reference mapping of one workload on one device."""

    placement: Placement
    routes: RouteResult
    wirelength: int
    critical_path: float


@dataclass
class RepairOutcome:
    """What one die needed to run one workload (one Monte Carlo trial)."""

    level: RepairLevel
    routed: bool
    wirelength: int = 0
    critical_path: float = 0.0
    dirty_nets: int = 0
    n_defects: int = 0

    def overheads(self, golden: GoldenMapping) -> tuple[float, float]:
        """(wirelength, critical-path) ratios vs the golden mapping."""
        if not self.routed:
            return 0.0, 0.0
        wl = self.wirelength / golden.wirelength if golden.wirelength else 1.0
        cp = (
            self.critical_path / golden.critical_path
            if golden.critical_path
            else 1.0
        )
        return wl, cp

    def to_dict(self) -> dict:
        return {
            "level": self.level.name.lower(),
            "routed": self.routed,
            "wirelength": self.wirelength,
            "critical_path": self.critical_path,
            "dirty_nets": self.dirty_nets,
            "n_defects": self.n_defects,
        }


def build_golden(
    c: CompiledRRG,
    netlist: Netlist,
    placement: Placement,
    max_iterations: int,
    route_workers: int | None = None,
) -> GoldenMapping | None:
    """Route the defect-free reference mapping (``None`` if unroutable).

    The placement is supplied by the caller so campaigns can share one
    anneal across defect rates and spare-width points (placement does
    not see routing resources — the same invariant the sweep runner's
    placement cache exploits).  ``route_workers > 1`` routes the
    initial pass in bit-identical parallel wavefronts.
    """
    try:
        rr = route_context_compiled(
            c, netlist, placement, max_iterations=max_iterations,
            workers=route_workers,
        )
    except RoutingError:
        return None
    return GoldenMapping(
        placement, rr, rr.wirelength(c),
        critical_path(c, netlist, rr, placement),
    )


def dirty_net_names(routes: RouteResult, dm: DefectMap) -> set[str]:
    """Nets whose golden route crosses a dead wire or dead switch."""
    node_ok = dm.node_ok
    bad_pairs = dm.bad_edge_pairs
    out: set[str] = set()
    for name, net in routes.nets.items():
        if not all(node_ok[n] for n in net.nodes):
            out.add(name)
        elif bad_pairs and not bad_pairs.isdisjoint(net.edges):
            out.add(name)
    return out


def placement_blocked(placement: Placement, dm: DefectMap) -> bool:
    """True when any placed cell sits on a dead logic site."""
    if not dm.bad_tiles:
        return False
    return any(coord in dm.bad_tiles for coord in placement.cells.values())


def repair_mapping(
    c: CompiledRRG,
    netlist: Netlist,
    golden: GoldenMapping,
    dm: DefectMap,
    seed: int = 0,
    effort: float = 0.3,
    max_iterations: int = 25,
    route_workers: int | None = None,
) -> RepairOutcome:
    """Climb the repair ladder until the die maps the workload (or not).

    ``seed``/``effort`` parameterise the re-place rung; routing rungs
    inherit ``max_iterations`` so repair verdicts stay comparable with
    sweep verdicts.  ``route_workers > 1`` runs each rung's initial
    routing pass in bit-identical parallel wavefronts (outcomes are
    identical either way — the wavefront only overlaps provably
    independent nets).
    """
    blocked = placement_blocked(golden.placement, dm)
    dirty = dirty_net_names(golden.routes, dm) if not blocked else set()
    if not blocked and not dirty:
        return RepairOutcome(
            RepairLevel.NONE, True, golden.wirelength, golden.critical_path,
            0, dm.n_defects,
        )

    if not blocked:
        # rung 1: reroute only the dirty nets; healthy routes enter the
        # reuse bank and are adopted verbatim (rip-up only on congestion)
        bank = {
            endpoint_signature(net.source, net.sinks): net
            for name, net in golden.routes.nets.items()
            if name not in dirty
        }
        try:
            rr = route_context_compiled(
                c, netlist, golden.placement, reuse=bank, defects=dm,
                max_iterations=max_iterations, workers=route_workers,
            )
            return RepairOutcome(
                RepairLevel.ROUTE_AROUND, True, rr.wirelength(c),
                critical_path(c, netlist, rr, golden.placement),
                len(dirty), dm.n_defects,
            )
        except RoutingError:
            pass
        # rung 2: full rip-up-and-reroute under the defect mask
        try:
            rr = route_context_compiled(
                c, netlist, golden.placement, defects=dm,
                max_iterations=max_iterations, workers=route_workers,
            )
            return RepairOutcome(
                RepairLevel.REROUTE, True, rr.wirelength(c),
                critical_path(c, netlist, rr, golden.placement),
                len(dirty), dm.n_defects,
            )
        except RoutingError:
            pass

    # rung 3: re-place off the dead tiles, then reroute
    try:
        pl = place(
            netlist, dm.params, seed=seed, effort=effort,
            forbidden=dm.bad_tiles,
        )
        rr = route_context_compiled(
            c, netlist, pl, defects=dm, max_iterations=max_iterations,
            workers=route_workers,
        )
        return RepairOutcome(
            RepairLevel.REPLACE, True, rr.wirelength(c),
            critical_path(c, netlist, rr, pl),
            len(dirty), dm.n_defects,
        )
    except (PlacementError, RoutingError):
        return RepairOutcome(
            RepairLevel.FAIL, False, 0, 0.0, len(dirty), dm.n_defects
        )
