"""Defect-avoidance mapping: the repair escalation ladder.

Given a *golden* (defect-free) mapping of a workload and one die's
:class:`~repro.reliability.defect_map.DefectMap`, decide whether the die
can still run the workload — spending as little mapping effort as the
defects demand:

0. **NONE** — the golden placement avoids every dead logic site and the
   golden routes touch no dead wire/switch: the die works as-is.
1. **ROUTE_AROUND** — placement is fine but some routes cross defects:
   reroute *only* the dirty nets, seeding the router's reuse bank with
   the healthy routes (they are adopted as-is and only ripped up if the
   detours create congestion).
2. **REROUTE** — route-around could not converge: rip everything up and
   reroute the whole context under the defect mask.
3. **REPLACE** — the placement itself sits on dead logic (or rerouting
   is hopeless around the current pin positions): re-place with the
   dead tiles forbidden, then reroute.
4. **FAIL** — even re-place+reroute cannot map the workload; the die is
   scrap for this workload.

The ladder is exactly the knob manufacturers trade CAD time against
yield with, so :class:`RepairOutcome` records which rung succeeded plus
the quality cost (wirelength / critical-path overhead vs the golden
mapping) of surviving.

The ladder is *incremental* by default: defect detection is a
vectorised mask lookup over flat per-net node/edge arrays (built once
per golden mapping and cached on it), the ROUTE_AROUND rung warm-starts
PathFinder from the golden congestion state
(:func:`~repro.route.pathfinder.route_context_warm` — adopted routes
alias the golden sets and commit usage in batches), and timing analysis
reuses the golden per-net delay tables for every net that kept its
route.  All of it is bit-identical to the from-scratch ladder
(``incremental=False``, kept as the reference and benchmark baseline).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.arch.compiled import CompiledRRG
from repro.errors import PlacementError, RoutingError
from repro.netlist.netlist import Netlist
from repro.place.placer import Placement, place
from repro.reliability.defect_map import DefectMap
from repro.route.pathfinder import (
    RouteResult,
    endpoint_signature,
    route_context_compiled,
    route_context_warm,
)
from repro.route.timing import critical_path, route_net_delays
from repro.utils.profile import span

#: Tile coordinates are encoded as ``x * _COORD_BASE + y`` for the
#: vectorised membership tests; fabric dimensions are far below this.
_COORD_BASE = 1 << 20


class RepairLevel(enum.IntEnum):
    """Rungs of the escalation ladder, cheapest first."""

    NONE = 0
    ROUTE_AROUND = 1
    REROUTE = 2
    REPLACE = 3
    FAIL = 4


class RouteFlat:
    """Flat per-net views of one routing (plus its placement) for
    vectorised defect detection.

    Concatenates every net's node set and edge set into single numpy
    arrays with per-net offsets — the same flat layout the shared-memory
    golden segments use for per-sink paths — so a trial's dirty-net
    census is a fancy-index gather plus a segmented reduction instead of
    a Python loop over every node of every net.  Also carries the
    placement's logic-cell coordinates (encoded) and the per-net
    endpoint signatures the warm-start reuse bank needs.
    """

    __slots__ = (
        "names", "nodes_flat", "node_start", "edge_codes", "edge_start",
        "n_nodes", "cells_xy", "signatures",
    )

    def __init__(
        self, routes: RouteResult, n_nodes: int,
        placement: Placement | None = None,
    ) -> None:
        names: list[str] = []
        nodes: list[int] = []
        node_start = [0]
        edges: list[int] = []
        edge_start = [0]
        signatures: dict[str, str] = {}
        for name, net in routes.nets.items():
            names.append(name)
            nodes.extend(net.nodes)
            node_start.append(len(nodes))
            for a, b in net.edges:
                edges.append(a * n_nodes + b)
            edge_start.append(len(edges))
            signatures[name] = endpoint_signature(net.source, net.sinks)
        self.names = names
        self.n_nodes = n_nodes
        self.nodes_flat = np.asarray(nodes, dtype=np.int64)
        self.node_start = np.asarray(node_start, dtype=np.int64)
        self.edge_codes = np.asarray(edges, dtype=np.int64)
        self.edge_start = np.asarray(edge_start, dtype=np.int64)
        self.signatures = signatures
        if placement is None:
            self.cells_xy = np.empty(0, dtype=np.int64)
        else:
            self.cells_xy = np.asarray(
                [c.x * _COORD_BASE + c.y for c in placement.cells.values()],
                dtype=np.int64,
            )

    def dirty_net_names(self, dm: DefectMap) -> set[str]:
        """Vectorised: nets whose route crosses a dead wire/switch."""
        if not self.names:
            return set()
        # every net has >= 1 node and >= 1 edge, so the segmented
        # reductions see no empty segments
        bad = ~dm.node_ok[self.nodes_flat]
        net_bad = np.logical_or.reduceat(bad, self.node_start[:-1])
        bad_pairs = dm.bad_edge_pairs
        if bad_pairs:
            bad_codes = np.fromiter(
                (a * self.n_nodes + b for a, b in bad_pairs),
                dtype=np.int64, count=len(bad_pairs),
            )
            hit = np.isin(self.edge_codes, bad_codes)
            net_bad |= np.logical_or.reduceat(hit, self.edge_start[:-1])
        names = self.names
        return {names[i] for i in np.flatnonzero(net_bad)}

    def placement_blocked(self, dm: DefectMap) -> bool:
        """Vectorised: any placed logic cell on a dead tile."""
        if not dm.bad_tiles or self.cells_xy.size == 0:
            return False
        bad = np.fromiter(
            (t.x * _COORD_BASE + t.y for t in dm.bad_tiles),
            dtype=np.int64, count=len(dm.bad_tiles),
        )
        return bool(np.isin(self.cells_xy, bad).any())


@dataclass
class GoldenMapping:
    """Defect-free reference mapping of one workload on one device.

    ``_flat`` / ``_delays`` are derived caches (flat detection views,
    per-net delay tables) built lazily by the incremental repair ladder;
    they never pickle — trial payloads ship the lean mapping and each
    worker rebuilds the caches once.
    """

    placement: Placement
    routes: RouteResult
    wirelength: int
    critical_path: float
    _flat: RouteFlat | None = field(
        default=None, repr=False, compare=False)
    _delays: dict | None = field(
        default=None, repr=False, compare=False)

    def __getstate__(self):
        return (self.placement, self.routes, self.wirelength,
                self.critical_path)

    def __setstate__(self, state):
        (self.placement, self.routes, self.wirelength,
         self.critical_path) = state
        self._flat = None
        self._delays = None

    def flat(self, c: CompiledRRG) -> RouteFlat:
        """Flat defect-detection views of the golden routes, cached."""
        if self._flat is None:
            self._flat = RouteFlat(self.routes, c.n_nodes, self.placement)
        return self._flat

    def net_delays(self, c: CompiledRRG) -> dict:
        """Per-net sink-delay tables of the golden routes, cached."""
        if self._delays is None:
            self._delays = route_net_delays(c, self.routes)
        return self._delays


@dataclass
class RepairOutcome:
    """What one die needed to run one workload (one Monte Carlo trial)."""

    level: RepairLevel
    routed: bool
    wirelength: int = 0
    critical_path: float = 0.0
    dirty_nets: int = 0
    n_defects: int = 0

    def overheads(self, golden: GoldenMapping) -> tuple[float, float]:
        """(wirelength, critical-path) ratios vs the golden mapping.

        A zero-wirelength (or zero-delay) golden admits no meaningful
        ratio; the repaired mapping's *absolute* value is reported
        instead, so added wire/delay still registers rather than
        collapsing to a flat 1.0.
        """
        if not self.routed:
            return 0.0, 0.0
        wl = (
            self.wirelength / golden.wirelength
            if golden.wirelength
            else float(self.wirelength)
        )
        cp = (
            self.critical_path / golden.critical_path
            if golden.critical_path
            else self.critical_path
        )
        return wl, cp

    def to_dict(self) -> dict:
        return {
            "level": self.level.name.lower(),
            "routed": self.routed,
            "wirelength": self.wirelength,
            "critical_path": self.critical_path,
            "dirty_nets": self.dirty_nets,
            "n_defects": self.n_defects,
        }


def build_golden(
    c: CompiledRRG,
    netlist: Netlist,
    placement: Placement,
    max_iterations: int,
    route_workers: int | None = None,
) -> GoldenMapping | None:
    """Route the defect-free reference mapping (``None`` if unroutable).

    The placement is supplied by the caller so campaigns can share one
    anneal across defect rates and spare-width points (placement does
    not see routing resources — the same invariant the sweep runner's
    placement cache exploits).  ``route_workers > 1`` routes the
    initial pass in bit-identical parallel wavefronts.
    """
    try:
        with span("golden.route"):
            rr = route_context_compiled(
                c, netlist, placement, max_iterations=max_iterations,
                workers=route_workers,
            )
    except RoutingError:
        return None
    return GoldenMapping(
        placement, rr, rr.wirelength(c),
        critical_path(c, netlist, rr, placement),
    )


def dirty_net_names(
    routes: RouteResult, dm: DefectMap, flat: RouteFlat | None = None
) -> set[str]:
    """Nets whose golden route crosses a dead wire or dead switch.

    Vectorised over flat per-net node/edge arrays; pass a cached
    :class:`RouteFlat` (``GoldenMapping.flat``) to skip rebuilding the
    views per call.
    """
    if flat is None:
        flat = RouteFlat(routes, dm.n_nodes)
    return flat.dirty_net_names(dm)


def placement_blocked(
    placement: Placement, dm: DefectMap, flat: RouteFlat | None = None
) -> bool:
    """True when any placed cell sits on a dead logic site."""
    if not dm.bad_tiles:
        return False
    if flat is not None and flat.cells_xy.size:
        return flat.placement_blocked(dm)
    return any(coord in dm.bad_tiles for coord in placement.cells.values())


def repair_mapping(
    c: CompiledRRG,
    netlist: Netlist,
    golden: GoldenMapping,
    dm: DefectMap,
    seed: int = 0,
    effort: float = 0.3,
    max_iterations: int = 25,
    route_workers: int | None = None,
    incremental: bool = True,
) -> RepairOutcome:
    """Climb the repair ladder until the die maps the workload (or not).

    ``seed``/``effort`` parameterise the re-place rung; routing rungs
    inherit ``max_iterations`` so repair verdicts stay comparable with
    sweep verdicts.  ``route_workers > 1`` runs each rung's initial
    routing pass in bit-identical parallel wavefronts (outcomes are
    identical either way — the wavefront only overlaps provably
    independent nets).

    ``incremental`` (default) runs the delta-reroute ladder: cached
    flat views for detection, a ROUTE_AROUND rung warm-started from
    the golden congestion state (healthy routes adopted before any
    dirty net searches — see
    :func:`~repro.route.pathfinder.route_context_warm`), and golden
    delay-table reuse in timing.  ``incremental=False`` is the
    from-scratch reference ladder (the benchmark baseline): it reaches
    the same repair verdicts on the same detection results, but its
    ROUTE_AROUND rung discovers the reuse bank in netlist order, so
    the exact repaired routes — and with them the reported overheads —
    may legitimately differ.  Both ladders are deterministic per input
    and identical across execution backends.
    """
    flat = golden.flat(c) if incremental else None
    with span("repair.detect"):
        blocked = placement_blocked(golden.placement, dm, flat)
        if blocked:
            dirty: set[str] = set()
        else:
            dirty = dirty_net_names(golden.routes, dm, flat)
    if not blocked and not dirty:
        return RepairOutcome(
            RepairLevel.NONE, True, golden.wirelength, golden.critical_path,
            0, dm.n_defects,
        )

    if not blocked:
        # rung 1: reroute only the dirty nets; healthy routes enter the
        # reuse bank and are adopted verbatim (rip-up only on congestion)
        try:
            with span("repair.route_around"):
                if incremental:
                    rr = route_context_warm(
                        c, netlist, golden.placement, golden.routes, dirty,
                        defects=dm, max_iterations=max_iterations,
                        workers=route_workers, signatures=flat.signatures,
                    )
                else:
                    bank = {
                        endpoint_signature(net.source, net.sinks): net
                        for name, net in golden.routes.nets.items()
                        if name not in dirty
                    }
                    rr = route_context_compiled(
                        c, netlist, golden.placement, reuse=bank, defects=dm,
                        max_iterations=max_iterations, workers=route_workers,
                    )
                return RepairOutcome(
                    RepairLevel.ROUTE_AROUND, True, rr.wirelength(c),
                    critical_path(
                        c, netlist, rr, golden.placement,
                        reuse_delays=(
                            golden.net_delays(c) if incremental else None
                        ),
                    ),
                    len(dirty), dm.n_defects,
                )
        except RoutingError:
            pass
        # rung 2: full rip-up-and-reroute under the defect mask
        try:
            with span("repair.reroute"):
                rr = route_context_compiled(
                    c, netlist, golden.placement, defects=dm,
                    max_iterations=max_iterations, workers=route_workers,
                )
                return RepairOutcome(
                    RepairLevel.REROUTE, True, rr.wirelength(c),
                    critical_path(c, netlist, rr, golden.placement),
                    len(dirty), dm.n_defects,
                )
        except RoutingError:
            pass

    # rung 3: re-place off the dead tiles, then reroute
    try:
        with span("repair.replace"):
            pl = place(
                netlist, dm.params, seed=seed, effort=effort,
                forbidden=dm.bad_tiles,
            )
            rr = route_context_compiled(
                c, netlist, pl, defects=dm, max_iterations=max_iterations,
                workers=route_workers,
            )
            return RepairOutcome(
                RepairLevel.REPLACE, True, rr.wirelength(c),
                critical_path(c, netlist, rr, pl),
                len(dirty), dm.n_defects,
            )
    except (PlacementError, RoutingError):
        return RepairOutcome(
            RepairLevel.FAIL, False, 0, 0.0, len(dirty), dm.n_defects
        )
