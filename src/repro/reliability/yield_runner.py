"""Monte Carlo manufacturing-yield campaigns on the compiled engine.

The experiment the subsystem exists for: sample N defective dies per
``(defect rate, device)`` cell, climb the repair ladder on each, and
report what fraction of dies still maps the workload — plus what the
survivors paid in wirelength/critical path, and how much yield a spare
routing track buys.

Execution rides the sweep subsystem's backends
(:meth:`repro.analysis.sweep.SweepRunner.map_items`): trials are
picklable :class:`YieldTrialJob` rows fanned out sequentially, over a
thread pool, or over a ``ProcessPoolExecutor``.  Determinism is by
construction identical across backends: every trial's defect seed is
derived in the parent from ``(campaign seed, point index, trial
index)`` via ``numpy``'s ``SeedSequence``, the golden mapping is
computed once in the parent and shipped with each job, and worker-side
substrates are pure functions of ``ArchParams`` through the
``flat_rrg_for`` cache — so a campaign's :class:`YieldPoint` rows are
bit-identical whichever backend ran them.

On the process backend with shared memory enabled (the default; see
:func:`repro.arch.shared.shared_memory_default`), the golden mapping
and the compiled substrate are *published once* through POSIX shared
memory instead of being pickled into every trial job: each trial ships
an O(1)-pickling :class:`~repro.arch.shared.SharedGolden` /
:class:`~repro.arch.shared.SharedSubstrate` handle pair, workers
attach both zero-copy in the pool initializer (one attach per worker
process however many trials it runs), and the segments are refcounted
by the sweep runner's :class:`~repro.arch.shared.SharedStore` and
unlinked on :meth:`YieldRunner.close`.  Rows stay bit-identical: the
attached golden reconstructs the exact routes the parent computed, and
the attached substrate holds the same arrays ``flat_rrg_for`` builds.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.iters import SizedIterator
from repro.utils.profile import PhaseProfiler, merge_profiles, profiling, span
from repro.utils.telemetry import Telemetry, collecting, merge_metrics
from repro.utils.telemetry import span as tspan

from repro.arch.params import ArchParams
from repro.netlist.netlist import Netlist
from repro.reliability.defect_map import (
    CLUSTER_RADIUS,
    CLUSTER_SIZE,
    DEFECT_MODELS,
    DefectMap,
)
from repro.reliability.repair import (
    GoldenMapping,
    RepairLevel,
    RepairOutcome,
    build_golden,
    repair_mapping,
)

#: PathFinder budget per trial — matches the sweep subsystem's
#: per-point budget so yield and routability verdicts are comparable.
from repro.analysis.sweep import POINT_MAX_ITERATIONS, SweepJob, SweepRunner


#: stateless, reusable — spares an allocation on every unprofiled trial
_NULL_CTX = nullcontext()


def trial_seed(campaign_seed: int, point_index: int, trial_index: int) -> int:
    """Deterministic per-trial defect seed, independent of the backend.

    Derived through ``SeedSequence`` so nearby (seed, point, trial)
    triples decorrelate properly — adjacent trials must not sample
    overlapping defect sets just because their indices are adjacent.
    """
    seq = np.random.SeedSequence((campaign_seed, point_index, trial_index))
    return int(seq.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFF)


@dataclass(frozen=True)
class YieldTrialJob:
    """One Monte Carlo trial: one sampled die, one workload (picklable)."""

    workload: str
    params: ArchParams
    netlist: Netlist
    defect_rate: float
    model: str
    trial: int
    defect_seed: int
    seed: int = 0
    effort: float = 0.3
    max_iterations: int = POINT_MAX_ITERATIONS
    cluster_radius: int = CLUSTER_RADIUS
    cluster_size: int = CLUSTER_SIZE
    #: wavefront width for each repair rung's *initial* routing pass
    #: (``None`` = sequential).  Outcomes are bit-identical either way
    #: — the wavefront only parallelises provably independent nets.
    route_workers: int | None = None
    #: collect a per-trial phase profile (wall-clock — never part of
    #: the row bit-identity contract; see :mod:`repro.utils.profile`)
    profile: bool = False
    #: run/trace id when telemetry is on (``None`` = off); the trial's
    #: span buffer and counter deltas ride back in the result
    telemetry: str | None = None


@dataclass
class TrialResult:
    """One trial's outcome (kept small so process backends ship cheap)."""

    trial: int
    outcome: RepairOutcome
    wirelength_overhead: float = 0.0
    critical_path_overhead: float = 0.0
    profile: dict | None = None
    metrics: dict | None = None

    def to_dict(self) -> dict:
        d = self.outcome.to_dict()
        d["trial"] = self.trial
        d["wirelength_overhead"] = self.wirelength_overhead
        d["critical_path_overhead"] = self.critical_path_overhead
        if self.profile is not None:
            d["profile"] = self.profile
        if self.metrics is not None:
            d["metrics"] = self.metrics
        return d


def evaluate_trial(
    job: YieldTrialJob, golden: GoldenMapping, c=None, dm=None
) -> TrialResult:
    """Sample the die, run the repair ladder, measure the cost.

    Runs in whichever worker the backend chose: the substrate comes
    from the per-process ``flat_rrg_for`` cache (no per-trial RRG
    build), and the defect sample depends only on the job's seed.  An
    explicit ``c`` (e.g. a shared-memory attached substrate) skips the
    cache entirely; an explicit ``dm`` (e.g. rebuilt from a published
    defect batch) skips sampling — sampling is a pure function of
    ``(seed, substrate)``, so the outcome is identical either way.
    """
    if c is None:
        from repro.arch.compiled import flat_rrg_for

        c = flat_rrg_for(job.params)
    prof = PhaseProfiler() if job.profile else None
    tel = Telemetry(job.telemetry) if job.telemetry else None
    with profiling(prof) if prof is not None else _NULL_CTX, \
            collecting(tel) if tel is not None else nullcontext():
        if dm is None:
            with span("trial.sample"), tspan("trial.sample"):
                dm = DefectMap.sample(
                    c, job.defect_rate, seed=job.defect_seed, model=job.model,
                    cluster_radius=job.cluster_radius,
                    cluster_size=job.cluster_size,
                )
        with tspan("trial.repair"):
            outcome = repair_mapping(
                c, job.netlist, golden, dm,
                seed=job.seed, effort=job.effort,
                max_iterations=job.max_iterations,
                route_workers=job.route_workers,
            )
        wl, cp = outcome.overheads(golden)
    return TrialResult(
        job.trial, outcome, wl, cp,
        profile=prof.to_dict() if prof is not None else None,
        metrics=tel.snapshot() if tel is not None else None,
    )


def _evaluate_trial_item(item: tuple[YieldTrialJob, GoldenMapping]) -> TrialResult:
    """Top-level single-argument adapter (process pools need picklable
    callables; ``map_items`` feeds one item per call)."""
    job, golden = item
    return evaluate_trial(job, golden)


def _evaluate_trial_shared(item) -> TrialResult:
    """Process-pool entry point for the shared-memory backend.

    ``item`` is ``(job, golden_handle, substrate_handle,
    defect_handle, batch_index)`` — the handles are
    :class:`~repro.arch.shared.SharedGolden` /
    :class:`~repro.arch.shared.SharedSubstrate` /
    :class:`~repro.arch.shared.SharedDefectBatch`, attached zero-copy
    and cached per worker process (the pool initializer already warmed
    them, so these are dictionary hits).  Shared jobs ship
    ``netlist=None`` (the netlist rides the golden segment, not every
    trial pickle); the worker re-binds the published one, so golden
    routes are interpreted against the exact netlist they were
    computed with.  The defect map is rebuilt around row
    ``batch_index`` of the published mask batch instead of re-sampled
    — the parent drew it with this trial's seed, so the map is equal
    field for field.  ``defect_handle`` may be ``None`` (campaigns
    that opt out of batch publication fall back to local sampling).
    """
    job, golden_handle, substrate_handle, defect_handle, batch_index = item
    netlist, golden = golden_handle.attach_cached()
    c = substrate_handle.attach_cached()
    if job.netlist is None:
        job = replace(job, netlist=netlist)
    dm = None
    if defect_handle is not None:
        batch = defect_handle.attach_cached()
        dm = batch.map_for(c, batch_index, job.defect_rate, job.defect_seed)
    return evaluate_trial(job, golden, c=c, dm=dm)


@dataclass
class YieldPoint:
    """Aggregate of one campaign cell: N trials at one defect rate."""

    workload: str
    model: str
    defect_rate: float
    channel_width: int
    trials: int
    yield_fraction: float
    repair_histogram: dict[str, int] = field(default_factory=dict)
    mean_defects: float = 0.0
    mean_wirelength_overhead: float = 0.0
    mean_critical_path_overhead: float = 0.0
    spare_tracks: int = 0
    golden_routed: bool = True
    #: merged per-phase timings across the cell's trials; ``None``
    #: unless profiling was requested (wall-clock — omitted from
    #: serialization so profiled and unprofiled rows stay comparable)
    profile: dict | None = None
    #: merged telemetry (spans per worker pid + counter sums) across
    #: the cell's trials; ``None`` unless telemetry was on — omitted
    #: from serialization so rows stay bit-identical with it off
    metrics: dict | None = None

    def to_dict(self) -> dict:
        d = {
            "workload": self.workload,
            "model": self.model,
            "defect_rate": self.defect_rate,
            "channel_width": self.channel_width,
            "trials": self.trials,
            "yield_fraction": self.yield_fraction,
            "repair_histogram": dict(self.repair_histogram),
            "mean_defects": self.mean_defects,
            "mean_wirelength_overhead": self.mean_wirelength_overhead,
            "mean_critical_path_overhead": self.mean_critical_path_overhead,
            "spare_tracks": self.spare_tracks,
            "golden_routed": self.golden_routed,
        }
        if self.profile is not None:
            d["profile"] = self.profile
        if self.metrics is not None:
            d["metrics"] = self.metrics
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "YieldPoint":
        return cls(
            workload=d["workload"],
            model=d["model"],
            defect_rate=d["defect_rate"],
            channel_width=d["channel_width"],
            trials=d["trials"],
            yield_fraction=d["yield_fraction"],
            repair_histogram=dict(d.get("repair_histogram", {})),
            mean_defects=d.get("mean_defects", 0.0),
            mean_wirelength_overhead=d.get("mean_wirelength_overhead", 0.0),
            mean_critical_path_overhead=d.get(
                "mean_critical_path_overhead", 0.0
            ),
            spare_tracks=d.get("spare_tracks", 0),
            golden_routed=d.get("golden_routed", True),
            profile=d.get("profile"),
            metrics=d.get("metrics"),
        )


def _aggregate(
    workload: str,
    model: str,
    rate: float,
    params: ArchParams,
    results: Sequence[TrialResult],
    spare_tracks: int = 0,
) -> YieldPoint:
    """Fold N trial results into one :class:`YieldPoint` row."""
    n = len(results)
    histogram = {level.name.lower(): 0 for level in RepairLevel}
    routed = 0
    defects = wl = cp = 0.0
    for tr in results:
        histogram[tr.outcome.level.name.lower()] += 1
        defects += tr.outcome.n_defects
        if tr.outcome.routed:
            routed += 1
            wl += tr.wirelength_overhead
            cp += tr.critical_path_overhead
    return YieldPoint(
        workload=workload,
        model=model,
        defect_rate=rate,
        channel_width=params.channel_width,
        trials=n,
        yield_fraction=routed / n if n else 0.0,
        repair_histogram=histogram,
        mean_defects=defects / n if n else 0.0,
        mean_wirelength_overhead=wl / routed if routed else 0.0,
        mean_critical_path_overhead=cp / routed if routed else 0.0,
        spare_tracks=spare_tracks,
        golden_routed=True,
        profile=merge_profiles(tr.profile for tr in results),
        metrics=merge_metrics(tr.metrics for tr in results),
    )


def _unroutable_point(
    workload: str, model: str, rate: float, params: ArchParams,
    trials: int, spare_tracks: int,
) -> YieldPoint:
    """Campaign cell whose *defect-free* device cannot map the workload:
    every die fails before any defect is even sampled."""
    histogram = {level.name.lower(): 0 for level in RepairLevel}
    histogram[RepairLevel.FAIL.name.lower()] = trials
    return YieldPoint(
        workload=workload, model=model, defect_rate=rate,
        channel_width=params.channel_width, trials=trials,
        yield_fraction=0.0, repair_histogram=histogram,
        spare_tracks=spare_tracks, golden_routed=False,
    )


class YieldRunner:
    """Monte Carlo yield campaigns riding the sweep subsystem's backends.

    ``backend``/``workers`` mean exactly what they mean for
    :class:`~repro.analysis.sweep.SweepRunner` (which executes the
    trials).  Golden mappings and placements are cached on the runner:
    campaigns over many rates or spare widths share one anneal per
    placement-relevant configuration and one golden route per device.
    """

    def __init__(
        self,
        engine=None,
        backend: str = "sequential",
        workers: int | None = None,
        runner: SweepRunner | None = None,
    ) -> None:
        #: an explicit ``runner`` shares its placement cache with the
        #: caller (the api ``Session`` passes its sweep runner, so a
        #: yield stage reuses the anneal a sweep stage already paid for)
        self._runner = runner if runner is not None else SweepRunner(
            engine=engine, backend=backend, workers=workers
        )
        self._golden: dict[tuple, GoldenMapping | None] = {}
        # single-flight get-or-create: concurrent campaigns (service
        # jobs sharing one Session) must agree on the golden mapping
        self._golden_lock = threading.Lock()

    @property
    def backend(self) -> str:
        return self._runner.backend

    def close(self) -> None:
        """Release the shared-memory publications (substrates *and*
        golden mappings) held by the underlying sweep runner's store.
        Idempotent; the store is lazily recreated on next use."""
        self._runner.close()

    def __enter__(self) -> "YieldRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def golden_for(
        self,
        netlist: Netlist,
        params: ArchParams,
        seed: int = 0,
        effort: float = 0.3,
        max_iterations: int = POINT_MAX_ITERATIONS,
        route_workers: int | None = None,
    ) -> GoldenMapping | None:
        """The cached defect-free mapping for one device configuration.

        Placement comes through the sweep runner's placement cache
        (channel width is invisible to the placer, so spare-width
        curves share one anneal); routing is cached here per
        ``ArchParams``.  ``route_workers`` does not enter the cache key
        — the wavefront router is bit-identical to the sequential one,
        so equal configurations yield equal goldens regardless.
        """
        key = (netlist, params, seed, effort, max_iterations)
        with self._golden_lock:
            if key not in self._golden:
                from repro.arch.compiled import flat_rrg_for

                job = SweepJob("yield", 0.0, params, netlist, seed, effort,
                               max_iterations)
                placement = self._runner.placement_for(job)
                self._golden[key] = build_golden(
                    flat_rrg_for(params), netlist, placement, max_iterations,
                    route_workers=route_workers,
                )
            return self._golden[key]

    def _golden_cache_key(
        self, netlist, params, seed, effort, max_iterations
    ) -> tuple:
        """The shared-memory publication key for one golden mapping —
        the same identity :meth:`golden_for` caches under, so campaigns
        re-running one configuration reuse the published segment."""
        return (netlist, params, seed, effort, max_iterations)

    def iter_campaign(
        self,
        netlist: Netlist,
        workload: str,
        base: ArchParams,
        rates: Sequence[float],
        trials: int,
        model: str = "uniform",
        seed: int = 0,
        effort: float = 0.3,
        max_iterations: int = POINT_MAX_ITERATIONS,
        cluster_radius: int = CLUSTER_RADIUS,
        cluster_size: int = CLUSTER_SIZE,
        spare_tracks: int = 0,
        route_workers: int | None = None,
        profile: bool = False,
        telemetry: str | None = None,
    ) -> SizedIterator:
        """Streaming form of :meth:`run_campaign`: yield each
        :class:`YieldPoint` as soon as its ``trials`` results are in.

        All trials (across every rate) are still submitted to the
        backend up front, so parallel backends overlap cells; trial
        results are consumed in submission order, so the aggregated
        rows are bit-identical to the blocking call's.  Sized:
        ``len()`` is the number of campaign points (one per rate).
        """
        rates = list(rates)
        if model not in DEFECT_MODELS:
            raise ValueError(
                f"model must be one of {DEFECT_MODELS}, got {model!r}"
            )
        return SizedIterator(
            self._iter_campaign(
                netlist, workload, base, rates, trials, model, seed, effort,
                max_iterations, cluster_radius, cluster_size, spare_tracks,
                route_workers, profile, telemetry,
            ),
            len(rates),
        )

    def _iter_campaign(
        self, netlist, workload, base, rates, trials, model, seed, effort,
        max_iterations, cluster_radius, cluster_size, spare_tracks,
        route_workers=None, profile=False, telemetry=None,
    ):
        golden = self.golden_for(netlist, base, seed, effort, max_iterations,
                                 route_workers=route_workers)
        if golden is None:
            for r in rates:
                yield _unroutable_point(workload, model, r, base, trials,
                                        spare_tracks)
            return
        if trials <= 0:
            for rate in rates:
                yield _aggregate(workload, model, float(rate), base, [],
                                 spare_tracks)
            return
        n_items = len(rates) * trials
        shared = (
            self._runner.backend == "process"
            and self._runner.shared_memory
            and self._runner.pool_width(n_items) > 1
        )
        results = (
            self._iter_trials_shared(
                netlist, workload, base, rates, trials, model, seed, effort,
                max_iterations, cluster_radius, cluster_size, route_workers,
                golden, profile, telemetry,
            )
            if shared else
            self._iter_trials_pickled(
                netlist, workload, base, rates, trials, model, seed, effort,
                max_iterations, cluster_radius, cluster_size, route_workers,
                golden, profile, telemetry,
            )
        )
        cell: list[TrialResult] = []
        pi = 0
        for tr in results:
            cell.append(tr)
            if len(cell) == trials:
                yield _aggregate(workload, model, float(rates[pi]), base,
                                 cell, spare_tracks)
                cell = []
                pi += 1

    def _trial_jobs(
        self, netlist, workload, base, rates, trials, model, seed, effort,
        max_iterations, cluster_radius, cluster_size, route_workers,
        profile=False, telemetry=None,
    ) -> list[YieldTrialJob]:
        """The campaign's trial grid, in submission (= aggregation)
        order.  ``netlist=None`` builds the lean shared-memory form."""
        jobs: list[YieldTrialJob] = []
        for pi, rate in enumerate(rates):
            for t in range(trials):
                jobs.append(YieldTrialJob(
                    workload=workload, params=base, netlist=netlist,
                    defect_rate=float(rate), model=model, trial=t,
                    defect_seed=trial_seed(seed, pi, t),
                    seed=seed, effort=effort, max_iterations=max_iterations,
                    cluster_radius=cluster_radius, cluster_size=cluster_size,
                    route_workers=route_workers, profile=profile,
                    telemetry=telemetry,
                ))
        return jobs

    def _iter_trials_pickled(
        self, netlist, workload, base, rates, trials, model, seed, effort,
        max_iterations, cluster_radius, cluster_size, route_workers, golden,
        profile=False, telemetry=None,
    ):
        """Classic fan-out: every item pickles the golden + netlist."""
        jobs = self._trial_jobs(
            netlist, workload, base, rates, trials, model, seed, effort,
            max_iterations, cluster_radius, cluster_size, route_workers,
            profile, telemetry,
        )
        items = [(job, golden) for job in jobs]
        return self._runner.iter_items(_evaluate_trial_item, items)

    def _iter_trials_shared(
        self, netlist, workload, base, rates, trials, model, seed, effort,
        max_iterations, cluster_radius, cluster_size, route_workers, golden,
        profile=False, telemetry=None,
    ):
        """Process fan-out with the golden mapping, the substrate and
        the campaign's defect masks published over shared memory.

        Each trial item is ``(lean job, golden handle, substrate
        handle, defect handle, batch index)`` — the handles pickle in
        O(1), so per-job payload is a few hundred bytes however large
        the fabric or the golden routes are.  All three segments are
        attached in the pool initializer: one real attach per worker
        process (``repro.arch.shared.attach_count`` pins this in the
        bench).  The defect masks are sampled once, parent-side, in
        submission order — bit-identical to worker-side sampling
        because :meth:`DefectMap.sample` is a pure function of the
        (seed, substrate) pair — and published as one node-mask matrix
        plus ragged defect id lists; workers rebuild each trial's map
        around a zero-copy row view instead of re-sampling and
        re-lowering it.
        """
        from repro.arch.compiled import flat_rrg_for
        from repro.arch.shared import warm_worker

        store = self._runner.store()
        golden_handle = store.golden_for(
            self._golden_cache_key(netlist, base, seed, effort,
                                   max_iterations),
            golden, netlist,
        )
        c = flat_rrg_for(base)
        substrate_handle = store.substrate_for(c)

        def _sample_batch():
            return [
                DefectMap.sample(
                    c, float(rate), seed=trial_seed(seed, pi, t), model=model,
                    cluster_radius=cluster_radius, cluster_size=cluster_size,
                )
                for pi, rate in enumerate(rates)
                for t in range(trials)
            ]

        defect_handle = store.defects_for(
            (base, model, tuple(float(r) for r in rates), trials, seed,
             cluster_radius, cluster_size),
            _sample_batch,
        )
        jobs = self._trial_jobs(
            None, workload, base, rates, trials, model, seed, effort,
            max_iterations, cluster_radius, cluster_size, route_workers,
            profile, telemetry,
        )
        items = [
            (job, golden_handle, substrate_handle, defect_handle, i)
            for i, job in enumerate(jobs)
        ]
        return self._runner.iter_items(
            _evaluate_trial_shared, items,
            initializer=warm_worker,
            initargs=((golden_handle, substrate_handle, defect_handle),),
        )

    def run_campaign(
        self,
        netlist: Netlist,
        workload: str,
        base: ArchParams,
        rates: Sequence[float],
        trials: int,
        model: str = "uniform",
        seed: int = 0,
        effort: float = 0.3,
        max_iterations: int = POINT_MAX_ITERATIONS,
        cluster_radius: int = CLUSTER_RADIUS,
        cluster_size: int = CLUSTER_SIZE,
        spare_tracks: int = 0,
        route_workers: int | None = None,
        profile: bool = False,
        telemetry: str | None = None,
    ) -> list[YieldPoint]:
        """N trials per defect rate; one :class:`YieldPoint` per rate.

        ``spare_tracks`` only annotates the rows (spare-width curves
        pass the widened ``base`` themselves via
        :meth:`spare_width_curve`).
        """
        return list(self.iter_campaign(
            netlist, workload, base, rates, trials, model=model,
            seed=seed, effort=effort, max_iterations=max_iterations,
            cluster_radius=cluster_radius, cluster_size=cluster_size,
            spare_tracks=spare_tracks, route_workers=route_workers,
            profile=profile, telemetry=telemetry,
        ))

    def iter_spare_width_curve(
        self,
        netlist: Netlist,
        workload: str,
        base: ArchParams,
        spares: Sequence[int],
        rate: float,
        trials: int,
        model: str = "uniform",
        seed: int = 0,
        effort: float = 0.3,
        max_iterations: int = POINT_MAX_ITERATIONS,
        route_workers: int | None = None,
        profile: bool = False,
        telemetry: str | None = None,
    ) -> SizedIterator:
        """Streaming form of :meth:`spare_width_curve` (one
        :class:`YieldPoint` per spare width, as each completes).
        Sized: ``len()`` is the number of spare widths."""
        spares = list(spares)
        return SizedIterator(
            self._iter_spare_width_curve(
                netlist, workload, base, spares, rate, trials, model, seed,
                effort, max_iterations, route_workers, profile, telemetry,
            ),
            len(spares),
        )

    def _iter_spare_width_curve(
        self, netlist, workload, base, spares, rate, trials, model, seed,
        effort, max_iterations, route_workers=None, profile=False,
        telemetry=None,
    ):
        for spare in spares:
            params = base.with_(channel_width=base.channel_width + int(spare))
            yield from self.iter_campaign(
                netlist, workload, params, [rate], trials, model=model,
                seed=seed, effort=effort, max_iterations=max_iterations,
                spare_tracks=int(spare), route_workers=route_workers,
                profile=profile, telemetry=telemetry,
            )

    def spare_width_curve(
        self,
        netlist: Netlist,
        workload: str,
        base: ArchParams,
        spares: Sequence[int],
        rate: float,
        trials: int,
        model: str = "uniform",
        seed: int = 0,
        effort: float = 0.3,
        max_iterations: int = POINT_MAX_ITERATIONS,
        route_workers: int | None = None,
        profile: bool = False,
        telemetry: str | None = None,
    ) -> list[YieldPoint]:
        """Yield vs spare channel width at one defect rate.

        The manufacturing question the subsystem answers: each spare
        point widens every channel by ``spare`` tracks and reruns the
        campaign, so the curve prices redundant routing in yield
        percentage points.  All points share one placement (the placer
        never sees channel width).
        """
        return list(self.iter_spare_width_curve(
            netlist, workload, base, spares, rate, trials, model=model,
            seed=seed, effort=effort, max_iterations=max_iterations,
            route_workers=route_workers, profile=profile,
            telemetry=telemetry,
        ))


def combined_reliability_report(
    yield_points: Sequence[YieldPoint] | None = None,
    decoder_reports: Sequence | None = None,
    soft_error: "object | None" = None,
) -> dict:
    """Compose physical (fabric) and behavioral (configured-device)
    reliability results into one JSON-ready report.

    ``decoder_reports`` takes :class:`repro.core.defects.DecoderFaultReport`
    rows and ``soft_error`` a :class:`repro.core.defects.SoftErrorReport`
    — the old fault layer's outputs, now dict-serializable, so a single
    artifact can cover both halves of the reliability story.
    """
    from repro.core.defects import decoder_campaign_summary

    report: dict = {}
    if yield_points is not None:
        report["physical_yield"] = [pt.to_dict() for pt in yield_points]
    if decoder_reports is not None:
        report["decoder_faults"] = decoder_campaign_summary(decoder_reports)
    if soft_error is not None:
        report["soft_errors"] = soft_error.to_dict()
    return report
