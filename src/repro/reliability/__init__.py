"""Defect-tolerant mapping & Monte Carlo yield subsystem.

Physical defect models on the compiled routing fabric
(:mod:`~repro.reliability.defect_map`), a defect-avoidance repair
ladder for the mapping flow (:mod:`~repro.reliability.repair`), and
Monte Carlo yield campaigns riding the sweep backends
(:mod:`~repro.reliability.yield_runner`).  Complements the behavioral
fault layer in :mod:`repro.core.defects` — that one corrupts a
*configured* device, this one breaks the *die*.
"""

from repro.reliability.defect_map import DefectMap
from repro.reliability.repair import (
    GoldenMapping,
    RepairLevel,
    RepairOutcome,
    build_golden,
    dirty_net_names,
    placement_blocked,
    repair_mapping,
)
from repro.reliability.yield_runner import (
    TrialResult,
    YieldPoint,
    YieldRunner,
    YieldTrialJob,
    combined_reliability_report,
    evaluate_trial,
    trial_seed,
)

__all__ = [
    "DefectMap",
    "GoldenMapping",
    "RepairLevel",
    "RepairOutcome",
    "TrialResult",
    "YieldPoint",
    "YieldRunner",
    "YieldTrialJob",
    "build_golden",
    "combined_reliability_report",
    "dirty_net_names",
    "evaluate_trial",
    "placement_blocked",
    "repair_mapping",
    "trial_seed",
]
