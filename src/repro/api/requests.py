"""Typed, validated, JSON-serializable requests for the public api.

One frozen dataclass per flow the system runs — :class:`MapRequest`,
:class:`BatchRequest`, :class:`SweepRequest`, :class:`YieldRequest`,
:class:`AreaRequest`, :class:`ReorderRequest` — each carrying a shared
:class:`ExecutionConfig` (backend / workers / seed / effort) and a
versioned ``to_dict()``/``from_dict()`` pair (see
:mod:`repro.api.serialize`).  Validation happens at construction and
raises :class:`~repro.errors.RequestError`, so a bad backend name or a
negative worker count fails before any work is scheduled — uniformly,
where the underlying runners used to each spell their own conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.api.serialize import check, stamp
from repro.api.workloads import WORKLOADS, check_workload
from repro.errors import RequestError

#: Backends every grid-shaped request understands.  ``sequential`` is
#: in-process and ordered; ``thread``/``process`` fan out over pools
#: (``workers=None`` = all cores on both — the facade normalizes the
#: historical drift where some runners read ``None`` as "sequential").
BACKENDS = ("sequential", "thread", "process")

#: Sweep axes (the CLI spelling; analytic axes involve no routing).
SWEEP_AXES = ("change-rate", "contexts", "channel-width",
              "double-fraction", "fc")
ANALYTIC_AXES = ("change-rate", "contexts")

#: Spatial defect models a yield campaign accepts.
YIELD_MODELS = ("uniform", "clustered")

#: Default sweep values per axis (``values=None`` resolves to these).
SWEEP_DEFAULTS = {
    "change-rate": (0.0, 0.01, 0.03, 0.05, 0.1, 0.2, 0.5),
    "contexts": (2, 4, 8, 16),
    "channel-width": (4, 6, 8, 10, 12),
    "double-fraction": (0.0, 0.25, 0.5, 0.75),
    "fc": (1.0, 0.5, 0.3),
}


@dataclass(frozen=True)
class ExecutionConfig:
    """How a request executes: backend, pool size, seed, effort.

    ``effort=None`` means "the flow's historical default" (0.5 for
    mapping flows, 0.3 for sweep/yield points), so requests that don't
    care inherit exactly the behavior the subsystems always had.
    ``route_workers`` parallelises per-context routing *inside* one
    mapping job (share-unaware mode only — share-aware routing reuses
    earlier contexts' routes, a sequential dependency by construction);
    it is independent of ``workers``, which sizes the across-jobs pool.
    """

    backend: str = "sequential"
    workers: int | None = None
    seed: int = 0
    effort: float | None = None
    route_workers: int | None = None
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise RequestError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise RequestError(
                f"workers must be None or a positive int, got {self.workers!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise RequestError(f"seed must be an int, got {self.seed!r}")
        if self.effort is not None and not 0.0 < self.effort <= 1.0:
            raise RequestError(
                f"effort must be in (0, 1] or None, got {self.effort!r}"
            )
        if self.route_workers is not None and (
            not isinstance(self.route_workers, int) or self.route_workers < 1
        ):
            raise RequestError(
                f"route_workers must be None or a positive int, "
                f"got {self.route_workers!r}"
            )
        if not isinstance(self.telemetry, bool):
            raise RequestError(
                f"telemetry must be a bool, got {self.telemetry!r}"
            )

    def effort_or(self, default: float) -> float:
        """The configured effort, or the calling flow's default."""
        return self.effort if self.effort is not None else default

    def to_dict(self) -> dict:
        d = {
            "backend": self.backend,
            "workers": self.workers,
            "seed": self.seed,
            "effort": self.effort,
            "route_workers": self.route_workers,
        }
        # omitted when off: payloads (and the artifact store's resume
        # keys hashed from them) stay byte-identical to pre-telemetry
        if self.telemetry:
            d["telemetry"] = True
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ExecutionConfig":
        unknown = set(d) - {"backend", "workers", "seed", "effort",
                            "route_workers", "telemetry"}
        if unknown:
            # a typo'd key must not silently run with defaults
            raise RequestError(
                f"unknown execution keys {sorted(unknown)} "
                f"(known: backend, workers, seed, effort, route_workers, "
                f"telemetry)"
            )
        return cls(
            backend=d.get("backend", "sequential"),
            workers=d.get("workers"),
            seed=d.get("seed", 0),
            effort=d.get("effort"),
            route_workers=d.get("route_workers"),
            telemetry=d.get("telemetry", False),
        )


class _Request:
    """Shared (de)serialization plumbing for the request types.

    Subclasses set ``TYPE_TAG``; fields named in ``_TUPLE_FIELDS`` are
    rebuilt as tuples on the way in (JSON only has lists), and the
    ``execution`` field round-trips through :class:`ExecutionConfig`.
    """

    TYPE_TAG = ""
    _TUPLE_FIELDS: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        payload = {}
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "execution":
                v = v.to_dict()
            elif isinstance(v, tuple):
                v = list(v)
            payload[f.name] = v
        return stamp(self.TYPE_TAG, payload)

    @classmethod
    def from_dict(cls, d: dict):
        check(d, cls.TYPE_TAG)
        kwargs = {}
        for f in fields(cls):
            if f.name not in d:
                continue
            v = d[f.name]
            if f.name == "execution":
                v = ExecutionConfig.from_dict(v or {})
            elif f.name in cls._TUPLE_FIELDS and v is not None:
                v = tuple(v)
            kwargs[f.name] = v
        try:
            return cls(**kwargs)
        except RequestError:
            raise
        except TypeError as exc:
            raise RequestError(
                f"malformed {cls.TYPE_TAG} payload: {exc}"
            ) from exc


def _check_contexts(n: int) -> None:
    if not isinstance(n, int) or n < 1:
        raise RequestError(f"contexts must be a positive int, got {n!r}")


def _check_fraction(name: str, v: float) -> None:
    if not 0.0 <= v <= 1.0:
        raise RequestError(f"{name} must be in [0, 1], got {v!r}")


@dataclass(frozen=True)
class MapRequest(_Request):
    """Map one named workload end to end (place + route + verify)."""

    TYPE_TAG = "map_request"

    workload: str = "adder"
    contexts: int = 4
    mutation: float = 0.05
    share_aware: bool = True
    verify: bool = True
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        check_workload(self.workload)
        _check_contexts(self.contexts)
        _check_fraction("mutation", self.mutation)


@dataclass(frozen=True)
class BatchRequest(_Request):
    """Map several named workloads through the shared engine."""

    TYPE_TAG = "batch_request"
    _TUPLE_FIELDS = ("workloads",)

    workloads: tuple[str, ...] = ("adder", "crc")
    contexts: int = 4
    mutation: float = 0.05
    share_aware: bool = True
    verify: bool = True
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        if not self.workloads:
            raise RequestError("workloads must name at least one workload")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        bad = [w for w in self.workloads if w not in WORKLOADS]
        if bad:
            raise RequestError(
                f"unknown workloads {bad!r} "
                f"(choose from {', '.join(WORKLOADS)})"
            )
        _check_contexts(self.contexts)
        _check_fraction("mutation", self.mutation)


@dataclass(frozen=True)
class SweepRequest(_Request):
    """One design-space or sensitivity sweep.

    ``what`` in :data:`ANALYTIC_AXES` evaluates the area model (no
    routing, so ``workload``/``grid``/``width`` and the execution
    backend are ignored); the routing axes place once per
    placement-relevant configuration and route a grid of device
    variants.
    """

    TYPE_TAG = "sweep_request"
    _TUPLE_FIELDS = ("values",)

    what: str = "change-rate"
    workload: str = "adder"
    grid: int = 6
    width: int = 10
    values: tuple[float, ...] | None = None
    #: collect a per-point phase-timing ``profile`` block on each row
    #: (wall-clock; ignored by analytic axes, which run no phases)
    profile: bool = False
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.profile, bool):
            raise RequestError(
                f"profile must be a bool, got {self.profile!r}"
            )
        if self.what not in SWEEP_AXES:
            raise RequestError(
                f"what must be one of {SWEEP_AXES}, got {self.what!r}"
            )
        check_workload(self.workload)
        if self.grid < 1:
            raise RequestError(f"grid must be >= 1, got {self.grid!r}")
        if self.width < 1:
            raise RequestError(f"width must be >= 1, got {self.width!r}")
        if self.values is not None:
            if not self.values:
                raise RequestError("values must be None or non-empty")
            for v in self.values:
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    raise RequestError(
                        f"sweep values must be numbers, got {v!r}"
                    )
                if self.what in ("contexts", "channel-width") \
                        and float(v) != int(v):
                    raise RequestError(
                        f"{self.what} values must be integers, got {v!r}"
                    )
            object.__setattr__(self, "values", tuple(self.values))

    @property
    def analytic(self) -> bool:
        return self.what in ANALYTIC_AXES

    def resolved_values(self) -> list:
        """The requested sweep values, or the axis defaults."""
        vals = self.values if self.values is not None \
            else SWEEP_DEFAULTS[self.what]
        cast = int if self.what in ("contexts", "channel-width") else float
        return [cast(v) for v in vals]


@dataclass(frozen=True)
class YieldRequest(_Request):
    """Monte Carlo manufacturing-yield campaign over fabric defects.

    ``spares`` switches the campaign from a defect-rate sweep to a
    yield-vs-spare-track curve at ``rates[0]``.
    """

    TYPE_TAG = "yield_request"
    _TUPLE_FIELDS = ("rates", "spares")

    workload: str = "adder"
    grid: int = 6
    width: int = 8
    rates: tuple[float, ...] = (0.0, 0.01, 0.03)
    trials: int = 8
    model: str = "uniform"
    spares: tuple[int, ...] | None = None
    #: collect a per-cell phase-timing ``profile`` block on each row
    #: (wall-clock, merged across the cell's trials)
    profile: bool = False
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.profile, bool):
            raise RequestError(
                f"profile must be a bool, got {self.profile!r}"
            )
        check_workload(self.workload)
        if self.grid < 1:
            raise RequestError(f"grid must be >= 1, got {self.grid!r}")
        if self.width < 1:
            raise RequestError(f"width must be >= 1, got {self.width!r}")
        if not self.rates:
            raise RequestError("rates must name at least one defect rate")
        object.__setattr__(
            self, "rates", tuple(float(r) for r in self.rates)
        )
        if any(r < 0 for r in self.rates):
            raise RequestError(f"defect rates must be >= 0, got {self.rates}")
        if self.trials < 0:
            raise RequestError(f"trials must be >= 0, got {self.trials!r}")
        if self.model not in YIELD_MODELS:
            raise RequestError(
                f"model must be one of {YIELD_MODELS}, got {self.model!r}"
            )
        if self.spares is not None:
            if not self.spares:
                raise RequestError("spares must be None or non-empty")
            object.__setattr__(
                self, "spares", tuple(int(s) for s in self.spares)
            )
            if any(s < 0 for s in self.spares):
                raise RequestError(
                    f"spare widths must be >= 0, got {self.spares}"
                )

    @property
    def campaign(self) -> str:
        return "spare-width" if self.spares is not None else "defect-rate"


@dataclass(frozen=True)
class AreaRequest(_Request):
    """Section-5 area evaluation at one operating point."""

    TYPE_TAG = "area_request"

    change_rate: float = 0.05
    contexts: int = 4
    sharing: float = 2.0
    constants: str = "paper"

    def __post_init__(self) -> None:
        _check_fraction("change_rate", self.change_rate)
        _check_contexts(self.contexts)
        if self.sharing <= 0:
            raise RequestError(f"sharing must be > 0, got {self.sharing!r}")
        if self.constants not in ("paper", "textbook"):
            raise RequestError(
                f"constants must be 'paper' or 'textbook', "
                f"got {self.constants!r}"
            )


@dataclass(frozen=True)
class ReorderRequest(_Request):
    """Context-ID reordering optimisation for one mapped workload."""

    TYPE_TAG = "reorder_request"

    workload: str = "adder"
    contexts: int = 4
    mutation: float = 0.15
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        check_workload(self.workload)
        _check_contexts(self.contexts)
        _check_fraction("mutation", self.mutation)


#: Source formats an :class:`ImportRequest` accepts (mirrors
#: :data:`repro.netlist.frontend.FORMATS`; duplicated literally so the
#: request layer stays import-light).
IMPORT_FORMATS = ("blif", "verilog")

#: Keys allowed in one :class:`ImportRequest` source mapping.
_SOURCE_KEYS = ("text", "format", "name")


@dataclass(frozen=True)
class ImportRequest(_Request):
    """Import external netlist sources (BLIF / structural Verilog) and
    map them as one multi-context program.

    Each entry of ``sources`` is a mapping with ``text`` (the source
    document), ``format`` (one of :data:`IMPORT_FORMATS`) and an
    optional ``name`` label used in error messages and context stats —
    one source per context.  ``grid=None`` auto-fits the architecture
    to the program; an explicit ``grid`` (plus optional channel
    ``width``) pins it, which is what the regression corpus does so
    goldens survive fit-heuristic changes.
    """

    TYPE_TAG = "import_request"
    _TUPLE_FIELDS = ("sources",)

    sources: tuple[dict, ...] = ()
    name: str | None = None
    k: int = 4
    grid: int | None = None
    width: int | None = None
    share_aware: bool = True
    verify: bool = True
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)

    def __post_init__(self) -> None:
        if not self.sources:
            raise RequestError("sources must name at least one netlist")
        cleaned = []
        for i, source in enumerate(self.sources):
            if not isinstance(source, dict):
                raise RequestError(
                    f"sources[{i}] must be a mapping with 'text' and "
                    f"'format', got {type(source).__name__}"
                )
            unknown = set(source) - set(_SOURCE_KEYS)
            if unknown:
                raise RequestError(
                    f"sources[{i}] has unknown keys {sorted(unknown)} "
                    f"(known: {', '.join(_SOURCE_KEYS)})"
                )
            text = source.get("text")
            if not isinstance(text, str) or not text.strip():
                raise RequestError(
                    f"sources[{i}] needs a non-empty 'text' string"
                )
            fmt = source.get("format")
            if fmt not in IMPORT_FORMATS:
                raise RequestError(
                    f"sources[{i}] format must be one of "
                    f"{IMPORT_FORMATS}, got {fmt!r}"
                )
            label = source.get("name")
            if label is not None and not isinstance(label, str):
                raise RequestError(
                    f"sources[{i}] name must be a string, got {label!r}"
                )
            entry = {"text": text, "format": fmt}
            if label is not None:
                entry["name"] = label
            cleaned.append(entry)
        object.__setattr__(self, "sources", tuple(cleaned))
        if self.name is not None and not isinstance(self.name, str):
            raise RequestError(
                f"name must be a string or None, got {self.name!r}"
            )
        if not isinstance(self.k, int) or isinstance(self.k, bool) \
                or not 2 <= self.k <= 8:
            raise RequestError(
                f"k must be an int in [2, 8], got {self.k!r}"
            )
        if self.grid is not None and (
            not isinstance(self.grid, int) or self.grid < 3
        ):
            raise RequestError(
                f"grid must be None or an int >= 3, got {self.grid!r}"
            )
        if self.width is not None:
            if self.grid is None:
                raise RequestError(
                    "width requires an explicit grid (auto-fit picks "
                    "its own channel width)"
                )
            if not isinstance(self.width, int) or self.width < 1:
                raise RequestError(
                    f"width must be None or a positive int, "
                    f"got {self.width!r}"
                )


def request_total_rows(request) -> int:
    """How many rows :meth:`repro.api.Session.stream` will yield for
    ``request`` — known before any work runs, so progress reporters
    (the job layer's rows-done/rows-total counters) can size their
    denominators up front.
    """
    if isinstance(request, BatchRequest):
        return len(request.workloads)
    if isinstance(request, SweepRequest):
        return len(request.resolved_values())
    if isinstance(request, YieldRequest):
        return len(request.spares) if request.spares is not None \
            else len(request.rates)
    if isinstance(request, (MapRequest, AreaRequest, ReorderRequest,
                            ImportRequest)):
        return 1
    raise RequestError(
        f"unsupported request type {type(request).__name__}"
    )


#: Type tag -> request class, for generic deserialization.
REQUEST_TYPES = {
    cls.TYPE_TAG: cls
    for cls in (MapRequest, BatchRequest, SweepRequest, YieldRequest,
                AreaRequest, ReorderRequest, ImportRequest)
}


def request_from_dict(d: dict):
    """Deserialize any request payload by its ``type`` tag."""
    if not isinstance(d, dict) or "type" not in d:
        raise RequestError("request payload needs a 'type' tag")
    cls = REQUEST_TYPES.get(d["type"])
    if cls is None:
        raise RequestError(
            f"unknown request type {d['type']!r} "
            f"(known: {sorted(REQUEST_TYPES)})"
        )
    return cls.from_dict(d)
