"""Typed, JSON-serializable results matching the api's request types.

Each ``*Result`` carries exactly the machine-readable fields the three
old ad-hoc JSON shapes (``cli.py``'s hand-rolled dicts, ``sweep.py``'s
and ``yield_runner.py``'s row dicts) used to spell separately, behind
one versioned ``to_dict()``/``from_dict()`` contract.  Heavyweight
in-memory artifacts (the mapped program, the area-model comparison
objects) ride along in ``compare=False`` fields so table renderers can
reach them, but they never serialize and never affect equality — the
round-trip contract ``from_dict(to_dict(x)) == x`` holds for every
type.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields

from repro.analysis.sweep import AreaPoint, SweepPoint
from repro.api.serialize import check, stamp
from repro.errors import RequestError
from repro.reliability.yield_runner import YieldPoint


@contextmanager
def _malformed_as_request_error(type_tag: str):
    """Missing/mistyped payload fields surface as the contract's
    :class:`RequestError`, never a raw TypeError/KeyError."""
    try:
        yield
    except RequestError:
        raise
    except (TypeError, KeyError) as exc:
        raise RequestError(
            f"malformed {type_tag} payload: {exc}"
        ) from exc


class _Result:
    """Shared (de)serialization plumbing (mirror of ``_Request``)."""

    TYPE_TAG = ""
    _TUPLE_FIELDS: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        payload = {}
        for f in fields(self):
            if not f.compare:
                continue
            v = getattr(self, f.name)
            if isinstance(v, tuple):
                v = list(v)
            payload[f.name] = v
        return stamp(self.TYPE_TAG, payload)

    @classmethod
    def from_dict(cls, d: dict):
        check(d, cls.TYPE_TAG)
        kwargs = {}
        for f in fields(cls):
            if not f.compare or f.name not in d:
                continue
            v = d[f.name]
            if f.name in cls._TUPLE_FIELDS and v is not None:
                v = tuple(v)
            kwargs[f.name] = v
        with _malformed_as_request_error(cls.TYPE_TAG):
            return cls(**kwargs)


@dataclass(frozen=True)
class MapResult(_Result):
    """Outcome of mapping one workload (also the per-workload row of a
    :class:`BatchResult`)."""

    TYPE_TAG = "map_result"
    _TUPLE_FIELDS = ("grid", "luts_per_context", "route_iterations")

    workload: str
    grid: tuple[int, int]
    contexts: int
    luts_per_context: tuple[int, ...]
    verified: bool
    share_aware: bool
    wirelength: int
    route_iterations: tuple[int, ...]
    reuse_fraction: float
    switch_change_rate: float
    class_fractions: dict
    #: the full in-memory experiment (mapped program + stats) for table
    #: renderers and downstream stages; never serialized.
    experiment: object | None = field(default=None, compare=False,
                                      repr=False)

    @classmethod
    def from_experiment(cls, workload: str, result) -> "MapResult":
        """Build from an :class:`~repro.analysis.experiments.ExperimentResult`."""
        mapped = result.mapped
        return cls(
            workload=workload,
            grid=(mapped.params.cols, mapped.params.rows),
            contexts=mapped.program.n_contexts,
            luts_per_context=tuple(
                len(nl.luts()) for nl in mapped.program.contexts
            ),
            verified=result.verified,
            share_aware=mapped.share_aware,
            wirelength=sum(
                rr.wirelength(mapped.rrg) for rr in mapped.routes
            ),
            route_iterations=tuple(rr.iterations for rr in mapped.routes),
            reuse_fraction=mapped.reuse_fraction(),
            switch_change_rate=result.stats.switch.change_fraction(),
            class_fractions={
                str(k): v for k, v in result.stats.class_fractions().items()
            },
            experiment=result,
        )


@dataclass(frozen=True)
class BatchResult(_Result):
    """One :class:`MapResult` per requested workload, in request order."""

    TYPE_TAG = "batch_result"

    results: tuple[MapResult, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    def to_dict(self) -> dict:
        return stamp(self.TYPE_TAG,
                     {"results": [r.to_dict() for r in self.results]})

    @classmethod
    def from_dict(cls, d: dict) -> "BatchResult":
        check(d, cls.TYPE_TAG)
        with _malformed_as_request_error(cls.TYPE_TAG):
            return cls(results=tuple(
                MapResult.from_dict(r) for r in d.get("results", ())
            ))


def _point_from_dict(what: str, d: dict):
    from repro.api.requests import ANALYTIC_AXES

    return (AreaPoint if what in ANALYTIC_AXES else SweepPoint).from_dict(d)


@dataclass(frozen=True)
class SweepResult(_Result):
    """Rows of one sweep: :class:`~repro.analysis.sweep.SweepPoint` for
    routing axes, :class:`~repro.analysis.sweep.AreaPoint` for the
    analytic ones.  ``sweep``/``workload``/``grid``/``backend`` mirror
    the request so the payload is self-describing."""

    TYPE_TAG = "sweep_result"
    _TUPLE_FIELDS = ("grid",)

    sweep: str
    workload: str | None
    grid: tuple[int, int] | None
    backend: str
    points: tuple
    metrics: dict | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))

    def to_dict(self) -> dict:
        d = {
            "sweep": self.sweep,
            "workload": self.workload,
            "grid": list(self.grid) if self.grid is not None else None,
            "backend": self.backend,
            "points": [pt.to_dict() for pt in self.points],
        }
        if self.metrics is not None:
            # only under ExecutionConfig.telemetry: payloads stay
            # byte-identical (and goldens hold) with telemetry off
            d["metrics"] = self.metrics
        return stamp(self.TYPE_TAG, d)

    @classmethod
    def from_dict(cls, d: dict) -> "SweepResult":
        check(d, cls.TYPE_TAG)
        grid = d.get("grid")
        with _malformed_as_request_error(cls.TYPE_TAG):
            return cls(
                sweep=d["sweep"],
                workload=d.get("workload"),
                grid=tuple(grid) if grid is not None else None,
                backend=d.get("backend", "sequential"),
                points=tuple(
                    _point_from_dict(d["sweep"], pt) for pt in d["points"]
                ),
                metrics=d.get("metrics"),
            )


@dataclass(frozen=True)
class YieldResult(_Result):
    """Rows of one Monte Carlo yield campaign
    (:class:`~repro.reliability.yield_runner.YieldPoint` per cell)."""

    TYPE_TAG = "yield_result"
    _TUPLE_FIELDS = ("grid",)

    campaign: str
    workload: str
    grid: tuple[int, int]
    model: str
    trials: int
    backend: str
    points: tuple
    metrics: dict | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))

    def to_dict(self) -> dict:
        d = {
            "campaign": self.campaign,
            "workload": self.workload,
            "grid": list(self.grid),
            "model": self.model,
            "trials": self.trials,
            "backend": self.backend,
            "points": [pt.to_dict() for pt in self.points],
        }
        if self.metrics is not None:
            d["metrics"] = self.metrics
        return stamp(self.TYPE_TAG, d)

    @classmethod
    def from_dict(cls, d: dict) -> "YieldResult":
        check(d, cls.TYPE_TAG)
        with _malformed_as_request_error(cls.TYPE_TAG):
            return cls(
                campaign=d["campaign"],
                workload=d["workload"],
                grid=tuple(d["grid"]),
                model=d["model"],
                trials=d["trials"],
                backend=d.get("backend", "sequential"),
                points=tuple(YieldPoint.from_dict(pt) for pt in d["points"]),
                metrics=d.get("metrics"),
            )


@dataclass(frozen=True)
class AreaResult(_Result):
    """Section-5 comparison: per-technology area breakdown dicts
    (the same shape the CLI's ``area --json`` always printed)."""

    TYPE_TAG = "area_result"

    change_rate: float
    contexts: int
    sharing_factor: float
    constants: str
    technologies: dict
    #: the AreaComparison objects behind ``technologies``, for table
    #: renderers; never serialized.
    comparisons: dict | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ReorderResult(_Result):
    """Context-ID reordering outcome for one workload."""

    TYPE_TAG = "reorder_result"
    _TUPLE_FIELDS = ("schedule",)

    workload: str
    contexts: int
    cost_before: int
    cost_after: int
    saving: float
    schedule: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "schedule", tuple(self.schedule))


@dataclass(frozen=True)
class ReportResult(_Result):
    """Cross-stage summary a spec's ``report`` stage emits."""

    TYPE_TAG = "report_result"

    summary: dict


@dataclass(frozen=True)
class SpecResult(_Result):
    """Everything one :class:`~repro.api.spec.ExperimentSpec` run
    produced: the typed result of every stage, in spec order."""

    TYPE_TAG = "spec_result"

    name: str
    workload: str
    stages: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))

    def to_dict(self) -> dict:
        return stamp(self.TYPE_TAG, {
            "name": self.name,
            "workload": self.workload,
            "stages": [r.to_dict() for r in self.stages],
        })

    @classmethod
    def from_dict(cls, d: dict) -> "SpecResult":
        check(d, cls.TYPE_TAG)
        with _malformed_as_request_error(cls.TYPE_TAG):
            return cls(
                name=d["name"],
                workload=d["workload"],
                stages=tuple(
                    result_from_dict(r) for r in d.get("stages", ())
                ),
            )


@dataclass(frozen=True)
class ImportResult(_Result):
    """Outcome of importing and mapping external netlist sources.

    ``contexts`` carries one stats dict per imported source (name,
    format, and the tech-mapped netlist's inputs/outputs/luts/dffs/
    depth/nets).  The serialized form of this result is exactly what
    the regression corpus pins as golden JSON.
    """

    TYPE_TAG = "import_result"
    _TUPLE_FIELDS = ("contexts", "grid", "route_iterations")

    name: str
    contexts: tuple[dict, ...]
    grid: tuple[int, int]
    n_contexts: int
    verified: bool
    share_aware: bool
    wirelength: int
    critical_path: float
    route_iterations: tuple[int, ...]
    reuse_fraction: float
    #: the full in-memory mapped program, for downstream consumers;
    #: never serialized.
    mapped: object | None = field(default=None, compare=False,
                                  repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "contexts", tuple(self.contexts))

    @classmethod
    def from_mapped(cls, name: str, contexts_meta, mapped,
                    verified: bool) -> "ImportResult":
        """Build from a :class:`MappedProgram` plus the per-context
        metadata :func:`repro.netlist.frontend.load_program` emits."""
        from repro.route.timing import critical_path

        worst = max(
            critical_path(mapped.rrg, mapped.program.contexts[i],
                          mapped.routes[i], mapped.placements[i])
            for i in range(mapped.program.n_contexts)
        )
        return cls(
            name=name,
            contexts=tuple(dict(m) for m in contexts_meta),
            grid=(mapped.params.cols, mapped.params.rows),
            n_contexts=mapped.program.n_contexts,
            verified=verified,
            share_aware=mapped.share_aware,
            wirelength=sum(
                rr.wirelength(mapped.rrg) for rr in mapped.routes
            ),
            critical_path=worst,
            route_iterations=tuple(
                rr.iterations for rr in mapped.routes
            ),
            reuse_fraction=mapped.reuse_fraction(),
            mapped=mapped,
        )


#: Type tag -> result class, for generic deserialization.
RESULT_TYPES = {
    cls.TYPE_TAG: cls
    for cls in (MapResult, BatchResult, SweepResult, YieldResult,
                AreaResult, ReorderResult, ReportResult, SpecResult,
                ImportResult)
}


def result_from_dict(d: dict):
    """Deserialize any result payload by its ``type`` tag."""
    if not isinstance(d, dict) or "type" not in d:
        raise RequestError("result payload needs a 'type' tag")
    cls = RESULT_TYPES.get(d["type"])
    if cls is None:
        raise RequestError(
            f"unknown result type {d['type']!r} "
            f"(known: {sorted(RESULT_TYPES)})"
        )
    return cls.from_dict(d)
