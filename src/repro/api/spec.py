"""Declarative experiment specs: a whole campaign as one JSON document.

An :class:`ExperimentSpec` names a workload, an architecture, an
execution policy and an ordered list of *stages* (``map`` → ``sweep`` →
``yield`` → ``report``); :meth:`repro.api.session.Session.run_spec`
executes it with shared caching across stages — one compiled substrate
per device configuration, placements shared between sweep points and
the yield stage's golden mapping, netlists built once.  The ``report``
stage folds the earlier stages' results into one summary dict.

Example document::

    {
      "schema_version": 1,
      "name": "ci-smoke",
      "workload": "adder",
      "arch": {"grid": 5, "width": 7},
      "execution": {"backend": "sequential", "seed": 0, "effort": 0.2},
      "stages": [
        {"stage": "map", "contexts": 4, "mutation": 0.05},
        {"stage": "sweep", "what": "channel-width", "values": [6, 7, 8, 9]},
        {"stage": "yield", "rates": [0.0, 0.03], "trials": 8},
        {"stage": "report"}
      ]
    }

A stage may carry a ``"name"`` (unique, filename-safe; defaults to the
stage kind, numbered on repetition) — artifact files and job events
address stages by it.  A spec may also carry a top-level ``"grid"``
fanning the whole campaign out over ``workloads`` × ``archs``::

    "grid": {"workloads": ["adder", "crc"],
             "archs": [{"grid": 5, "width": 7}, {"grid": 6, "width": 8}]}

:meth:`ExperimentSpec.expand` yields one child spec per cell; the
service layer's :class:`~repro.service.JobManager` runs the children
as parallel jobs sharing one :class:`~repro.api.Session`'s caches.

Stage options are exactly the matching request type's fields; the spec
header supplies ``workload``, ``execution`` and the ``arch`` keys to
every stage that takes them, unless the stage overrides them.  Two
deliberate asymmetries: ``arch`` only reaches the grid-shaped stages
(``sweep``/``yield``) — ``map``/``batch``/``reorder`` auto-fit their
device to the program exactly as the CLI flows always did, and their
reported grid may therefore differ from ``arch`` — and a ``batch``
stage with no explicit ``workloads`` list maps just the spec's
workload.  A stage-level ``execution`` dict overrides only the keys it
names; the rest inherit from the header.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, fields as dataclass_fields

from repro.api.requests import (
    BatchRequest,
    ExecutionConfig,
    ImportRequest,
    MapRequest,
    ReorderRequest,
    SweepRequest,
    YieldRequest,
)
from repro.api.serialize import check, stamp
from repro.api.workloads import check_workload
from repro.errors import RequestError, SpecError

#: Stage names a spec may use.  ``report`` takes no request — it
#: summarizes whatever ran before it.
STAGES = ("map", "batch", "sweep", "yield", "reorder", "import",
          "report")

_STAGE_REQUESTS = {
    "map": MapRequest,
    "batch": BatchRequest,
    "sweep": SweepRequest,
    "yield": YieldRequest,
    "reorder": ReorderRequest,
    "import": ImportRequest,
}

#: Spec-header keys stages inherit unless they override them.
_INHERITED = ("workload", "grid", "width")

#: Axes a spec-level ``grid`` may fan a campaign out over.
GRID_AXES = ("workloads", "archs")

#: Stage names must be filename- and URL-safe (they name artifact
#: files and appear in job event streams).
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, serializable experiment campaign."""

    name: str
    workload: str = "adder"
    arch: dict = field(default_factory=dict)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    stages: tuple = ()
    grid: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("spec needs a non-empty name")
        check_workload(self.workload)
        for key in self.arch:
            if key not in ("grid", "width"):
                raise SpecError(
                    f"unknown arch key {key!r} (known: grid, width)"
                )
        self._check_grid()
        object.__setattr__(self, "stages", tuple(
            dict(stage) for stage in self.stages
        ))
        if not self.stages:
            raise SpecError("spec needs at least one stage")
        for stage in self.stages:
            kind = stage.get("stage")
            if kind not in STAGES:
                raise SpecError(
                    f"unknown stage {kind!r} (known: {', '.join(STAGES)})"
                )
            if kind != "report":
                # fail at load time, not halfway through a campaign:
                # building the request validates every stage option
                self.request_for(stage)
        # resolving the names validates them (bad/duplicate -> SpecError)
        self.stage_names()

    def _check_grid(self) -> None:
        for key in self.grid:
            if key not in GRID_AXES:
                raise SpecError(
                    f"unknown grid axis {key!r} "
                    f"(known: {', '.join(GRID_AXES)})"
                )
        for axis in GRID_AXES:
            if axis in self.grid and not self.grid[axis]:
                raise SpecError(
                    f"grid axis {axis!r} is empty — a grid over zero "
                    f"values expands to no jobs; remove the axis or "
                    f"give it at least one value"
                )
        for w in self.grid.get("workloads", ()):
            try:
                check_workload(w)
            except RequestError as exc:
                # spec-document problems surface as SpecError uniformly
                raise SpecError(f"grid workloads: {exc}") from exc
        for arch in self.grid.get("archs", ()):
            if not isinstance(arch, dict):
                raise SpecError(
                    f"grid archs must be dicts like "
                    f"{{'grid': 6, 'width': 8}}, got {arch!r}"
                )
            for key in arch:
                if key not in ("grid", "width"):
                    raise SpecError(
                        f"unknown arch key {key!r} in grid archs "
                        f"(known: grid, width)"
                    )

    # -- stage names --------------------------------------------------------- #
    def stage_names(self) -> list:
        """One unique, filename-safe name per stage, in order.

        A stage may pin its own ``"name"``; unnamed stages default to
        their kind, numbered on repetition (``sweep``, ``sweep-2``,
        ...).  Duplicate names raise :class:`SpecError` — artifact
        files and job events address stages by name, so a collision
        would silently overwrite one stage's artifact with another's.
        """
        names: list = []
        for stage in self.stages:
            explicit = stage.get("name")
            if explicit is not None:
                if not isinstance(explicit, str) or \
                        not _NAME_RE.match(explicit):
                    raise SpecError(
                        f"bad stage name {explicit!r}: names must be "
                        f"non-empty and use only letters, digits, "
                        f"'_', '.' or '-'"
                    )
                if explicit in names:
                    raise SpecError(
                        f"duplicate stage name {explicit!r}: stage "
                        f"names address artifacts and job events, so "
                        f"each must be unique within the spec"
                    )
                names.append(explicit)
                continue
            kind = stage.get("stage")
            name, n = kind, 1
            while name in names:
                n += 1
                name = f"{kind}-{n}"
            names.append(name)
        # an auto-numbered name may still collide with a later explicit
        # one (["sweep", "sweep", {"name": "sweep-2"}]) — catch it here
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SpecError(
                f"duplicate stage names {dupes}: rename the explicitly "
                f"named stage(s) so every stage is unique"
            )
        return names

    # -- spec-level grids ---------------------------------------------------- #
    @property
    def is_grid(self) -> bool:
        """Whether this spec fans out into several child specs."""
        return bool(self.grid)

    def expand(self) -> "list[ExperimentSpec]":
        """The child specs a spec-level grid expands to, in axis order.

        The cross product of ``grid["workloads"]`` (default: the
        header workload) and ``grid["archs"]`` (default: the header
        ``arch``), one child per cell: same stages, same execution
        policy, the cell's workload/arch substituted into the header —
        so stage-level inheritance works exactly as in a flat spec.
        Children are named ``name[workload.gGxW]`` and carry no grid of
        their own.  A grid-less spec expands to ``[self]``.
        """
        if not self.grid:
            return [self]
        workloads = list(self.grid.get("workloads", ())) or [self.workload]
        archs = list(self.grid.get("archs", ())) or [dict(self.arch)]
        children = []
        for w in workloads:
            for arch in archs:
                label = w
                if arch:
                    label += ".g{}w{}".format(
                        arch.get("grid", "_"), arch.get("width", "_")
                    )
                children.append(ExperimentSpec(
                    name=f"{self.name}[{label}]",
                    workload=w,
                    arch=dict(arch),
                    execution=self.execution,
                    stages=tuple(dict(s) for s in self.stages),
                ))
        return children

    # -- stage -> typed request -------------------------------------------- #
    def request_for(self, stage: dict):
        """The typed request one stage resolves to (``None`` for
        ``report``)."""
        kind = stage.get("stage")
        if kind == "report":
            return None
        cls = _STAGE_REQUESTS.get(kind)
        if cls is None:
            raise SpecError(f"unknown stage {kind!r}")
        options = {k: v for k, v in stage.items()
                   if k not in ("stage", "name")}
        request_fields = {f.name for f in dataclass_fields(cls)}
        for key in _INHERITED:
            if key in request_fields and key not in options:
                if key == "workload":
                    options[key] = self.workload
                elif key in self.arch:
                    options[key] = self.arch[key]
        if "workloads" in request_fields and "workloads" not in options:
            # a batch stage with no explicit list maps the spec workload
            options["workloads"] = (self.workload,)
        if "execution" in request_fields and "execution" not in options:
            options["execution"] = self.execution
        elif isinstance(options.get("execution"), dict):
            # a stage-level execution dict overrides only the keys it
            # names; everything else inherits from the spec header
            merged = self.execution.to_dict()
            merged.update(options["execution"])
            options["execution"] = ExecutionConfig.from_dict(merged)
        unknown = set(options) - request_fields
        if unknown:
            raise SpecError(
                f"stage {kind!r} has unknown options {sorted(unknown)} "
                f"(known: {sorted(request_fields)})"
            )
        try:
            return cls(**options)
        except SpecError:
            raise
        except Exception as exc:
            raise SpecError(f"stage {kind!r}: {exc}") from exc

    def requests(self) -> list:
        """(stage name, request-or-None) for every stage, in order."""
        return [(s["stage"], self.request_for(s)) for s in self.stages]

    def total_rows(self) -> int:
        """How many rows streaming this spec yields end to end — the
        sum of every stage's row count (``report`` streams one row),
        known before any work runs.  Grid specs count the whole fan-out.
        """
        from repro.api.requests import request_total_rows

        if self.grid:
            return sum(child.total_rows() for child in self.expand())
        return sum(
            1 if request is None else request_total_rows(request)
            for _, request in self.requests()
        )

    # -- serialization ------------------------------------------------------ #
    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "workload": self.workload,
            "arch": dict(self.arch),
            "execution": self.execution.to_dict(),
            "stages": [dict(s) for s in self.stages],
        }
        if self.grid:
            payload["grid"] = {k: list(v) for k, v in self.grid.items()}
        return stamp("experiment_spec", payload)

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        check(d, "experiment_spec")
        unknown = set(d) - {"schema_version", "type", "name", "workload",
                            "arch", "execution", "stages", "grid"}
        if unknown:
            raise SpecError(
                f"unknown spec keys {sorted(unknown)} (known: name, "
                f"workload, arch, execution, stages, grid)"
            )
        return cls(
            name=d.get("name", ""),
            workload=d.get("workload", "adder"),
            arch=dict(d.get("arch", {})),
            execution=ExecutionConfig.from_dict(d.get("execution") or {}),
            stages=tuple(d.get("stages", ())),
            grid=dict(d.get("grid", {})),
        )

    @classmethod
    def from_file(cls, path) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SpecError(f"cannot read spec {path!r}: {exc}") from exc
        return cls.from_dict(doc)
