"""Declarative experiment specs: a whole campaign as one JSON document.

An :class:`ExperimentSpec` names a workload, an architecture, an
execution policy and an ordered list of *stages* (``map`` → ``sweep`` →
``yield`` → ``report``); :meth:`repro.api.session.Session.run_spec`
executes it with shared caching across stages — one compiled substrate
per device configuration, placements shared between sweep points and
the yield stage's golden mapping, netlists built once.  The ``report``
stage folds the earlier stages' results into one summary dict.

Example document::

    {
      "schema_version": 1,
      "name": "ci-smoke",
      "workload": "adder",
      "arch": {"grid": 5, "width": 7},
      "execution": {"backend": "sequential", "seed": 0, "effort": 0.2},
      "stages": [
        {"stage": "map", "contexts": 4, "mutation": 0.05},
        {"stage": "sweep", "what": "channel-width", "values": [6, 7, 8, 9]},
        {"stage": "yield", "rates": [0.0, 0.03], "trials": 8},
        {"stage": "report"}
      ]
    }

Stage options are exactly the matching request type's fields; the spec
header supplies ``workload``, ``execution`` and the ``arch`` keys to
every stage that takes them, unless the stage overrides them.  Two
deliberate asymmetries: ``arch`` only reaches the grid-shaped stages
(``sweep``/``yield``) — ``map``/``batch``/``reorder`` auto-fit their
device to the program exactly as the CLI flows always did, and their
reported grid may therefore differ from ``arch`` — and a ``batch``
stage with no explicit ``workloads`` list maps just the spec's
workload.  A stage-level ``execution`` dict overrides only the keys it
names; the rest inherit from the header.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields

from repro.api.requests import (
    BatchRequest,
    ExecutionConfig,
    MapRequest,
    ReorderRequest,
    SweepRequest,
    YieldRequest,
)
from repro.api.serialize import check, stamp
from repro.api.workloads import check_workload
from repro.errors import SpecError

#: Stage names a spec may use.  ``report`` takes no request — it
#: summarizes whatever ran before it.
STAGES = ("map", "batch", "sweep", "yield", "reorder", "report")

_STAGE_REQUESTS = {
    "map": MapRequest,
    "batch": BatchRequest,
    "sweep": SweepRequest,
    "yield": YieldRequest,
    "reorder": ReorderRequest,
}

#: Spec-header keys stages inherit unless they override them.
_INHERITED = ("workload", "grid", "width")


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, serializable experiment campaign."""

    name: str
    workload: str = "adder"
    arch: dict = field(default_factory=dict)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    stages: tuple = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("spec needs a non-empty name")
        check_workload(self.workload)
        for key in self.arch:
            if key not in ("grid", "width"):
                raise SpecError(
                    f"unknown arch key {key!r} (known: grid, width)"
                )
        object.__setattr__(self, "stages", tuple(
            dict(stage) for stage in self.stages
        ))
        if not self.stages:
            raise SpecError("spec needs at least one stage")
        for stage in self.stages:
            kind = stage.get("stage")
            if kind not in STAGES:
                raise SpecError(
                    f"unknown stage {kind!r} (known: {', '.join(STAGES)})"
                )
            if kind != "report":
                # fail at load time, not halfway through a campaign:
                # building the request validates every stage option
                self.request_for(stage)

    # -- stage -> typed request -------------------------------------------- #
    def request_for(self, stage: dict):
        """The typed request one stage resolves to (``None`` for
        ``report``)."""
        kind = stage.get("stage")
        if kind == "report":
            return None
        cls = _STAGE_REQUESTS.get(kind)
        if cls is None:
            raise SpecError(f"unknown stage {kind!r}")
        options = {k: v for k, v in stage.items() if k != "stage"}
        request_fields = {f.name for f in dataclass_fields(cls)}
        for key in _INHERITED:
            if key in request_fields and key not in options:
                if key == "workload":
                    options[key] = self.workload
                elif key in self.arch:
                    options[key] = self.arch[key]
        if "workloads" in request_fields and "workloads" not in options:
            # a batch stage with no explicit list maps the spec workload
            options["workloads"] = (self.workload,)
        if "execution" in request_fields and "execution" not in options:
            options["execution"] = self.execution
        elif isinstance(options.get("execution"), dict):
            # a stage-level execution dict overrides only the keys it
            # names; everything else inherits from the spec header
            merged = self.execution.to_dict()
            merged.update(options["execution"])
            options["execution"] = ExecutionConfig.from_dict(merged)
        unknown = set(options) - request_fields
        if unknown:
            raise SpecError(
                f"stage {kind!r} has unknown options {sorted(unknown)} "
                f"(known: {sorted(request_fields)})"
            )
        try:
            return cls(**options)
        except SpecError:
            raise
        except Exception as exc:
            raise SpecError(f"stage {kind!r}: {exc}") from exc

    def requests(self) -> list:
        """(stage name, request-or-None) for every stage, in order."""
        return [(s["stage"], self.request_for(s)) for s in self.stages]

    # -- serialization ------------------------------------------------------ #
    def to_dict(self) -> dict:
        return stamp("experiment_spec", {
            "name": self.name,
            "workload": self.workload,
            "arch": dict(self.arch),
            "execution": self.execution.to_dict(),
            "stages": [dict(s) for s in self.stages],
        })

    @classmethod
    def from_dict(cls, d: dict) -> "ExperimentSpec":
        check(d, "experiment_spec")
        unknown = set(d) - {"schema_version", "type", "name", "workload",
                            "arch", "execution", "stages"}
        if unknown:
            raise SpecError(
                f"unknown spec keys {sorted(unknown)} (known: name, "
                f"workload, arch, execution, stages)"
            )
        return cls(
            name=d.get("name", ""),
            workload=d.get("workload", "adder"),
            arch=dict(d.get("arch", {})),
            execution=ExecutionConfig.from_dict(d.get("execution") or {}),
            stages=tuple(d.get("stages", ())),
        )

    @classmethod
    def from_file(cls, path) -> "ExperimentSpec":
        """Load a spec from a JSON file."""
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SpecError(f"cannot read spec {path!r}: {exc}") from exc
        return cls.from_dict(doc)
