"""repro.api — the unified public surface of the reproduction.

Everything the system can do is reachable through three concepts:

- **Typed requests/results** (:mod:`repro.api.requests`,
  :mod:`repro.api.results`): frozen dataclasses with a shared
  :class:`ExecutionConfig` and one versioned JSON contract
  (``schema_version`` + ``to_dict``/``from_dict`` round trip).
- **The Session facade** (:mod:`repro.api.session`):
  ``Session.run(request)`` dispatches any request;
  ``Session.stream(request)`` yields rows incrementally (bit-identical
  to the blocking call); caches (compiled substrates, placements,
  golden mappings, netlists) are shared across everything a session
  runs.
- **Declarative specs** (:mod:`repro.api.spec`): an
  :class:`ExperimentSpec` JSON document names a workload, an
  architecture and a list of stages; ``Session.run_spec`` executes it
  with cross-stage cache sharing.

Quick taste::

    from repro.api import Session, SweepRequest, ExecutionConfig

    s = Session()
    result = s.run(SweepRequest(what="channel-width", workload="crc",
                                grid=6, values=(6, 8, 10),
                                execution=ExecutionConfig(backend="process")))
    for pt in result.points:
        print(pt.value, pt.routed, pt.wirelength)

The CLI (``python -m repro``) is a thin shell over this package, and
``repro run spec.json`` executes spec files directly.
"""

from repro.api.requests import (
    ANALYTIC_AXES,
    BACKENDS,
    SWEEP_AXES,
    SWEEP_DEFAULTS,
    YIELD_MODELS,
    AreaRequest,
    BatchRequest,
    ExecutionConfig,
    IMPORT_FORMATS,
    ImportRequest,
    MapRequest,
    ReorderRequest,
    REQUEST_TYPES,
    SweepRequest,
    YieldRequest,
    request_from_dict,
    request_total_rows,
)
from repro.api.results import (
    AreaResult,
    BatchResult,
    ImportResult,
    MapResult,
    ReorderResult,
    ReportResult,
    RESULT_TYPES,
    SpecResult,
    SweepResult,
    YieldResult,
    result_from_dict,
)
from repro.api.serialize import SCHEMA_VERSION
from repro.api.session import (
    Session,
    build_report,
    default_session,
    stage_rows,
)
from repro.api.spec import GRID_AXES, STAGES, ExperimentSpec
from repro.api.workloads import WORKLOADS, build_circuit, build_program

__all__ = [
    "ANALYTIC_AXES",
    "AreaRequest",
    "AreaResult",
    "BACKENDS",
    "BatchRequest",
    "BatchResult",
    "ExecutionConfig",
    "ExperimentSpec",
    "GRID_AXES",
    "IMPORT_FORMATS",
    "ImportRequest",
    "ImportResult",
    "MapRequest",
    "MapResult",
    "REQUEST_TYPES",
    "RESULT_TYPES",
    "ReorderRequest",
    "ReorderResult",
    "ReportResult",
    "SCHEMA_VERSION",
    "STAGES",
    "SWEEP_AXES",
    "SWEEP_DEFAULTS",
    "Session",
    "SpecResult",
    "SweepRequest",
    "SweepResult",
    "WORKLOADS",
    "YIELD_MODELS",
    "YieldRequest",
    "YieldResult",
    "build_circuit",
    "build_program",
    "build_report",
    "default_session",
    "request_from_dict",
    "request_total_rows",
    "result_from_dict",
    "stage_rows",
]
