"""Versioned JSON (de)serialization contract for the public api.

Every request and result type serializes through one discipline:

- :func:`stamp` adds the ``schema_version`` and ``type`` fields every
  payload carries,
- :func:`check` validates them on the way back in, raising
  :class:`~repro.errors.RequestError` on a missing/unsupported version
  or a mismatched type tag.

``from_dict(to_dict(x)) == x`` is the round-trip contract the api test
suite pins for every type; bump :data:`SCHEMA_VERSION` whenever a
serialized shape changes incompatibly.
"""

from __future__ import annotations

from repro.errors import RequestError

#: Version of the request/result JSON contract.  Readers accept
#: payloads stamped with any version up to their own and reject newer
#: ones (forward compatibility is explicit, never silent).
SCHEMA_VERSION = 1


def stamp(type_tag: str, payload: dict) -> dict:
    """``payload`` with the contract's ``schema_version``/``type`` header."""
    out = {"schema_version": SCHEMA_VERSION, "type": type_tag}
    out.update(payload)
    return out


def check(d: dict, type_tag: str) -> dict:
    """Validate a serialized payload's header; returns ``d`` unchanged."""
    if not isinstance(d, dict):
        raise RequestError(f"expected a dict payload, got {type(d).__name__}")
    version = d.get("schema_version")
    if version is None:
        raise RequestError(f"payload for {type_tag!r} lacks schema_version")
    if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
        raise RequestError(
            f"unsupported schema_version {version!r} for {type_tag!r} "
            f"(this library reads versions 1..{SCHEMA_VERSION})"
        )
    tag = d.get("type")
    if tag is not None and tag != type_tag:
        raise RequestError(
            f"payload type {tag!r} does not match expected {type_tag!r}"
        )
    return d
