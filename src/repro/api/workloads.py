"""Named workload registry for declarative requests.

Requests name workloads by string so they stay picklable and
JSON-serializable; this module is the single place those names resolve
to circuits.  (The CLI's workload table used to live in ``cli.py`` —
it moved here so external harnesses and the CLI agree on the catalog.)
"""

from __future__ import annotations

from repro.errors import RequestError

#: Workload names every request type accepts.
WORKLOADS = ("adder", "random", "crc", "parity", "cmp")


def check_workload(name: str) -> str:
    if name not in WORKLOADS:
        raise RequestError(
            f"unknown workloads [{name!r}] "
            f"(choose from {', '.join(WORKLOADS)})"
        )
    return name


def build_circuit(name: str):
    """Tech-mapped single-context netlist for a named workload."""
    from repro.netlist.techmap import tech_map
    from repro.workloads import generators as gen

    check_workload(name)
    circuits = {
        "adder": lambda: gen.ripple_adder(4),
        "random": lambda: gen.random_dag(6, 24, 4, seed=11),
        "crc": lambda: gen.crc_step(8),
        "parity": lambda: gen.parity_tree(8),
        "cmp": lambda: gen.comparator(4),
    }
    return tech_map(circuits[name](), k=4)


def build_program(name: str, n_contexts: int, mutation: float, seed: int,
                  base=None):
    """Multi-context program for a named workload.

    ``crc``/``parity`` temporally partition their base circuit; the
    rest mutate it per context (the same policy the CLI always used).
    ``base`` supplies an already-built circuit for ``name`` (the
    Session passes its cached netlist, so the tech map runs once per
    workload, not once per program variant).
    """
    from repro.workloads.multicontext import mutated_program, temporal_partition

    if base is None:
        base = build_circuit(name)
    else:
        check_workload(name)
    if name in ("crc", "parity"):
        return temporal_partition(base, n_contexts)
    return mutated_program(base, n_contexts, mutation, seed=seed)
