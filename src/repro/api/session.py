"""The `Session` facade: one object, every flow, shared caches.

A :class:`Session` owns the compiled-substrate engine, one
:class:`~repro.analysis.sweep.SweepRunner` per (backend, workers)
configuration (placement cache included), the reliability layer's
golden-mapping caches, and a netlist cache keyed by workload name — so
any mix of requests executed through it shares every expensive
artifact the subsystems know how to share.  Three entry points:

- :meth:`Session.run` — execute any typed request, return its typed
  result (dispatch on request type);
- :meth:`Session.stream` — the same rows, incrementally: sweep points,
  yield points and batch rows are yielded as they complete (in request
  order, bit-identical to the blocking call), with an optional
  ``progress(done, total, item)`` callback;
- :meth:`Session.run_spec` / :meth:`Session.stream_spec` — execute a
  declarative :class:`~repro.api.spec.ExperimentSpec` stage by stage,
  with caching shared *across* stages (one substrate build per device,
  the yield stage's golden mapping reuses the sweep stage's placement).

The CLI is a thin shell over this module; external harnesses should
target it directly (requests and results all have versioned
``to_dict``/``from_dict``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import replace

from repro.analysis.engine import DEFAULT_ENGINE, MappingEngine
from repro.analysis.sweep import (
    SweepRunner,
    channel_width_jobs,
    double_fraction_jobs,
    fc_jobs,
    sweep_change_rate_points,
    sweep_contexts_points,
)
from repro.api.requests import (
    AreaRequest,
    BatchRequest,
    ExecutionConfig,
    ImportRequest,
    MapRequest,
    ReorderRequest,
    SweepRequest,
    YieldRequest,
)
from repro.api.results import (
    AreaResult,
    BatchResult,
    ImportResult,
    MapResult,
    ReorderResult,
    ReportResult,
    SpecResult,
    SweepResult,
    YieldResult,
)
from repro.api.spec import ExperimentSpec
from repro.api.workloads import build_circuit, build_program
from repro.arch.params import ArchParams
from repro.errors import RequestError
from repro.reliability.yield_runner import YieldRunner
from repro.utils.telemetry import GLOBAL, merge_metrics, new_run_id

#: Historical per-flow effort defaults (``ExecutionConfig.effort=None``).
MAP_EFFORT = 0.5
POINT_EFFORT = 0.3

_JOB_BUILDERS = {
    "channel-width": channel_width_jobs,
    "double-fraction": double_fraction_jobs,
    "fc": fc_jobs,
}


def _noop_progress(done: int, total: int, item) -> None:
    return None


class Session:
    """Facade over the whole system; see the module docstring."""

    def __init__(self, engine: MappingEngine | None = None) -> None:
        self.engine = engine if engine is not None else DEFAULT_ENGINE
        self._circuits: dict[str, object] = {}
        self._programs: dict[tuple, object] = {}
        self._sweep_runners: dict[tuple, SweepRunner] = {}
        self._yield_runners: dict[tuple, YieldRunner] = {}
        # one lock for every get-or-create cache: concurrent requests
        # (the service layer's job workers share one Session) must
        # receive the *same* cached object for equal keys — the sweep
        # placement cache keys on netlist identity, so a duplicated
        # build would silently fork the downstream caches
        self._cache_lock = threading.RLock()

    # -- shared caches ------------------------------------------------------ #
    def circuit(self, workload: str):
        """The (cached) tech-mapped netlist for a named workload.

        Caching matters beyond build time: the sweep placement cache
        keys on netlist *identity*, so two stages asking for the same
        workload must receive the same object to share an anneal.
        """
        with self._cache_lock:
            nl = self._circuits.get(workload)
            if nl is None:
                GLOBAL.inc("session.cache.misses", cache="circuit")
                nl = build_circuit(workload)
                self._circuits[workload] = nl
            else:
                GLOBAL.inc("session.cache.hits", cache="circuit")
            return nl

    def program(self, workload: str, contexts: int, mutation: float,
                seed: int):
        """The (cached) multi-context program for a named workload."""
        key = (workload, contexts, mutation, seed)
        with self._cache_lock:
            prog = self._programs.get(key)
            if prog is None:
                GLOBAL.inc("session.cache.misses", cache="program")
                prog = build_program(workload, contexts, mutation, seed,
                                     base=self.circuit(workload))
                self._programs[key] = prog
            else:
                GLOBAL.inc("session.cache.hits", cache="program")
            return prog

    def sweep_runner(self, config: ExecutionConfig | None = None
                     ) -> SweepRunner:
        """The session's sweep runner for one backend configuration
        (placement cache shared across every request that uses it)."""
        config = config if config is not None else ExecutionConfig()
        key = (config.backend, config.workers)
        with self._cache_lock:
            runner = self._sweep_runners.get(key)
            if runner is None:
                GLOBAL.inc("session.cache.misses", cache="sweep_runner")
                runner = SweepRunner(engine=self.engine,
                                     backend=config.backend,
                                     workers=config.workers)
                self._sweep_runners[key] = runner
            else:
                GLOBAL.inc("session.cache.hits", cache="sweep_runner")
            return runner

    def yield_runner(self, config: ExecutionConfig | None = None
                     ) -> YieldRunner:
        """The session's yield runner for one backend configuration —
        rides the matching sweep runner, so golden mappings reuse
        placements that sweep stages already computed."""
        config = config if config is not None else ExecutionConfig()
        key = (config.backend, config.workers)
        with self._cache_lock:
            runner = self._yield_runners.get(key)
            if runner is None:
                GLOBAL.inc("session.cache.misses", cache="yield_runner")
                runner = YieldRunner(runner=self.sweep_runner(config))
                self._yield_runners[key] = runner
            else:
                GLOBAL.inc("session.cache.hits", cache="yield_runner")
            return runner

    def close(self) -> None:
        """Release the session's shared-memory publications.

        Every cached sweep runner (yield runners ride them) may hold a
        :class:`~repro.arch.shared.SharedStore` of published substrate
        and golden-mapping segments; closing unlinks whatever the
        session still owns.  Idempotent, and safe mid-life: stores are
        lazily recreated, so a closed session keeps working — it just
        re-publishes on the next process-backend request.
        """
        with self._cache_lock:
            runners = list(self._sweep_runners.values())
        for runner in runners:
            runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def map_program(self, program, params=None, share_aware: bool = True,
                    seed: int = 0, effort: float = MAP_EFFORT, rrg=None,
                    route_workers: int | None = None):
        """Place and route an explicit program object (the facade form
        of :func:`repro.analysis.experiments.map_program`)."""
        return self.engine.map(
            program, params, share_aware=share_aware, seed=seed,
            effort=effort, rrg=rrg, route_workers=route_workers,
        )

    # -- dispatch ----------------------------------------------------------- #
    def run(self, request):
        """Execute any typed request, blocking; returns its result type."""
        handler = self._RUN.get(type(request))
        if handler is None:
            raise RequestError(
                f"unsupported request type {type(request).__name__}"
            )
        return handler(self, request)

    def stream(self, request, progress=None):
        """Execute a request, yielding rows incrementally.

        Sweep requests yield their points, yield requests their
        campaign cells, batch requests one :class:`MapResult` per
        workload; single-shot requests (map, area, reorder) yield their
        one result.  Rows arrive in request order and are bit-identical
        to what :meth:`run` folds into its result.  ``progress`` is
        called as ``progress(done, total, item)`` after each row.
        """
        handler = self._STREAM.get(type(request))
        if handler is None:
            raise RequestError(
                f"unsupported request type {type(request).__name__}"
            )
        return handler(self, request, progress or _noop_progress)

    # -- map / batch -------------------------------------------------------- #
    def _map_one(self, workload: str, contexts: int, mutation: float,
                 share_aware: bool, verify: bool,
                 config: ExecutionConfig) -> MapResult:
        from repro.analysis.experiments import ExperimentResult, verify_mapped

        program = self.program(workload, contexts, mutation, config.seed)
        mapped = self.map_program(
            program, share_aware=share_aware, seed=config.seed,
            effort=config.effort_or(MAP_EFFORT),
            route_workers=config.route_workers,
        )
        stats = mapped.stats()
        verified = verify_mapped(mapped, seed=config.seed) if verify else False
        experiment = ExperimentResult(program.name, mapped, stats, verified)
        return MapResult.from_experiment(workload, experiment)

    def _run_map(self, req: MapRequest) -> MapResult:
        return self._map_one(req.workload, req.contexts, req.mutation,
                             req.share_aware, req.verify, req.execution)

    def _stream_map(self, req: MapRequest, progress):
        result = self._run_map(req)
        progress(1, 1, result)
        yield result

    def _run_batch(self, req: BatchRequest) -> BatchResult:
        return BatchResult(results=tuple(self._stream_batch(
            req, _noop_progress
        )))

    def _stream_batch(self, req: BatchRequest, progress):
        from repro.analysis.experiments import ExperimentResult, verify_mapped

        cfg = req.execution
        total = len(req.workloads)
        if cfg.backend == "sequential":
            for i, w in enumerate(req.workloads):
                result = self._map_one(w, req.contexts, req.mutation,
                                       req.share_aware, req.verify, cfg)
                progress(i + 1, total, result)
                yield result
            return
        # parallel backends ride the engine's streaming batch path (one
        # compiled substrate, whole batch submitted up front, rows
        # yielded as they complete in request order; pool semantics
        # normalized: workers=None = all cores)
        programs = [
            self.program(w, req.contexts, req.mutation, cfg.seed)
            for w in req.workloads
        ]
        workers = cfg.workers if cfg.workers is not None \
            else (os.cpu_count() or 1)
        mapped = self.engine.iter_map_batch(
            programs, share_aware=req.share_aware, seed=cfg.seed,
            effort=cfg.effort_or(MAP_EFFORT), workers=workers,
            backend=cfg.backend, route_workers=cfg.route_workers,
        )
        for i, (w, m) in enumerate(zip(req.workloads, mapped)):
            verified = (
                verify_mapped(m, seed=cfg.seed) if req.verify else False
            )
            experiment = ExperimentResult(w, m, m.stats(), verified)
            result = MapResult.from_experiment(w, experiment)
            progress(i + 1, total, result)
            yield result

    # -- sweep -------------------------------------------------------------- #
    def _sweep_result(self, req: SweepRequest, points) -> SweepResult:
        if req.analytic:
            return SweepResult(sweep=req.what, workload=None, grid=None,
                               backend="sequential", points=tuple(points))
        metrics = None
        if req.execution.telemetry:
            # result-level roll-up: counter sums + one span track per
            # worker pid, merged from the per-point snapshots
            metrics = merge_metrics(
                getattr(pt, "metrics", None) for pt in points
            )
        return SweepResult(
            sweep=req.what, workload=req.workload,
            grid=(req.grid, req.grid), backend=req.execution.backend,
            points=tuple(points), metrics=metrics,
        )

    def _run_sweep(self, req: SweepRequest) -> SweepResult:
        return self._sweep_result(
            req, list(self._stream_sweep(req, _noop_progress))
        )

    def _stream_sweep(self, req: SweepRequest, progress):
        values = req.resolved_values()
        if req.analytic:
            if req.what == "change-rate":
                points = sweep_change_rate_points(values)
            else:
                points = sweep_contexts_points([int(v) for v in values])
            for i, pt in enumerate(points):
                progress(i + 1, len(points), pt)
                yield pt
            return
        cfg = req.execution
        netlist = self.circuit(req.workload)
        base = ArchParams(
            cols=req.grid, rows=req.grid, channel_width=req.width,
            io_capacity=4,
        )
        jobs = _JOB_BUILDERS[req.what](
            netlist, base, values, seed=cfg.seed,
            effort=cfg.effort_or(POINT_EFFORT),
        )
        if cfg.route_workers is not None:
            # per-point wavefront routing (bit-identical to sequential
            # by construction; route_workers is placement-invisible,
            # so the placement cache key is untouched)
            jobs = [replace(job, route_workers=cfg.route_workers)
                    for job in jobs]
        if req.profile:
            jobs = [replace(job, profile=True) for job in jobs]
        if cfg.telemetry:
            run_id = new_run_id()
            jobs = [replace(job, telemetry=run_id) for job in jobs]
        runner = self.sweep_runner(cfg)
        for i, pt in enumerate(runner.iter_run(jobs)):
            if cfg.telemetry and pt.metrics is not None:
                # worker counter deltas feed the process-global
                # registry, so /v1/metrics sums across workers
                GLOBAL.merge_counters(pt.metrics.get("counters"))
            progress(i + 1, len(jobs), pt)
            yield pt

    # -- yield -------------------------------------------------------------- #
    def _yield_result(self, req: YieldRequest, points) -> YieldResult:
        metrics = None
        if req.execution.telemetry:
            metrics = merge_metrics(
                getattr(pt, "metrics", None) for pt in points
            )
        return YieldResult(
            campaign=req.campaign, workload=req.workload,
            grid=(req.grid, req.grid), model=req.model, trials=req.trials,
            backend=req.execution.backend, points=tuple(points),
            metrics=metrics,
        )

    def _run_yield(self, req: YieldRequest) -> YieldResult:
        return self._yield_result(
            req, list(self._stream_yield(req, _noop_progress))
        )

    def _stream_yield(self, req: YieldRequest, progress):
        cfg = req.execution
        netlist = self.circuit(req.workload)
        base = ArchParams(
            cols=req.grid, rows=req.grid, channel_width=req.width,
            io_capacity=4,
        )
        runner = self.yield_runner(cfg)
        effort = cfg.effort_or(POINT_EFFORT)
        run_id = new_run_id() if cfg.telemetry else None
        if req.spares is not None:
            total = len(req.spares)
            points = runner.iter_spare_width_curve(
                netlist, req.workload, base, list(req.spares), req.rates[0],
                req.trials, model=req.model, seed=cfg.seed, effort=effort,
                route_workers=cfg.route_workers, profile=req.profile,
                telemetry=run_id,
            )
        else:
            total = len(req.rates)
            points = runner.iter_campaign(
                netlist, req.workload, base, list(req.rates), req.trials,
                model=req.model, seed=cfg.seed, effort=effort,
                route_workers=cfg.route_workers, profile=req.profile,
                telemetry=run_id,
            )
        for i, pt in enumerate(points):
            if run_id is not None and pt.metrics is not None:
                GLOBAL.merge_counters(pt.metrics.get("counters"))
            progress(i + 1, total, pt)
            yield pt

    # -- area / reorder ----------------------------------------------------- #
    def _run_area(self, req: AreaRequest) -> AreaResult:
        from repro.core.area_model import AreaConstants, AreaModel, Technology

        constants = (
            AreaConstants.paper_calibrated() if req.constants == "paper"
            else AreaConstants.textbook()
        )
        model = AreaModel(constants)
        comparisons = {
            tech.value: model.paper_operating_point(
                change_rate=req.change_rate,
                n_contexts=req.contexts,
                sharing_factor=req.sharing,
                tech=tech,
            )
            for tech in (Technology.CMOS, Technology.FEPG)
        }
        technologies = {
            name: {
                "ratio": cmp.ratio,
                "proposed": {
                    "switch_area": cmp.proposed.switch_area,
                    "lut_area": cmp.proposed.lut_area,
                    "overhead_area": cmp.proposed.overhead_area,
                    "total": cmp.proposed.total,
                },
                "conventional": {
                    "switch_area": cmp.conventional.switch_area,
                    "lut_area": cmp.conventional.lut_area,
                    "overhead_area": cmp.conventional.overhead_area,
                    "total": cmp.conventional.total,
                },
            }
            for name, cmp in comparisons.items()
        }
        return AreaResult(
            change_rate=req.change_rate, contexts=req.contexts,
            sharing_factor=req.sharing, constants=req.constants,
            technologies=technologies, comparisons=comparisons,
        )

    def _stream_area(self, req: AreaRequest, progress):
        result = self._run_area(req)
        progress(1, 1, result)
        yield result

    def _run_reorder(self, req: ReorderRequest) -> ReorderResult:
        from repro.core.reorder import optimize_context_order

        cfg = req.execution
        program = self.program(req.workload, req.contexts, req.mutation,
                               cfg.seed)
        mapped = self.map_program(
            program, seed=cfg.seed, effort=cfg.effort_or(MAP_EFFORT),
            route_workers=cfg.route_workers,
        )
        masks = list(mapped.stats().switch.used.values())
        result = optimize_context_order(masks, req.contexts)
        return ReorderResult(
            workload=req.workload, contexts=req.contexts,
            cost_before=result.cost_before, cost_after=result.cost_after,
            saving=result.saving,
            schedule=tuple(result.physical_schedule()),
        )

    def _stream_reorder(self, req: ReorderRequest, progress):
        result = self._run_reorder(req)
        progress(1, 1, result)
        yield result

    # -- import ------------------------------------------------------------- #
    def _run_import(self, req: ImportRequest) -> ImportResult:
        from repro.analysis.experiments import verify_mapped
        from repro.netlist.frontend import arch_for, load_program

        cfg = req.execution
        program, metas = load_program(req.sources, k=req.k,
                                      name=req.name)
        params = None
        if req.grid is not None:
            params = arch_for(program, req.grid, width=req.width,
                              k=req.k)
        mapped = self.map_program(
            program, params, share_aware=req.share_aware,
            seed=cfg.seed, effort=cfg.effort_or(MAP_EFFORT),
            route_workers=cfg.route_workers,
        )
        verified = (
            verify_mapped(mapped, seed=cfg.seed) if req.verify else False
        )
        return ImportResult.from_mapped(program.name, metas, mapped,
                                        verified)

    def _stream_import(self, req: ImportRequest, progress):
        result = self._run_import(req)
        progress(1, 1, result)
        yield result

    # -- specs -------------------------------------------------------------- #
    def iter_spec_events(self, spec: ExperimentSpec, progress=None,
                         completed: "dict[int, object] | None" = None):
        """The event stream every spec entry point drains.

        Yields 4-tuples ``(kind, index, name, item)`` — ``kind`` is
        ``"row"`` (one per streamed row) or ``"result"`` (one per
        completed stage, carrying the folded typed result), ``index``
        is the stage's position in the spec and ``name`` its unique
        stage name (see :meth:`ExperimentSpec.stage_names`).  The
        blocking result is the concatenation of the streamed rows by
        construction.

        ``completed`` maps stage indices to already-computed results
        (the service layer passes artifacts loaded from a previous
        run): those stages *replay* their rows from the stored result
        instead of recomputing — streams stay bit-identical across a
        resume, and downstream ``report`` stages summarize the loaded
        results exactly as if they had just run.
        """
        progress = progress or _noop_progress
        completed = completed or {}
        names = spec.stage_names()
        collected: list = []
        for index, (stage, request) in enumerate(spec.requests()):
            name = names[index]
            if index in completed:
                loaded = completed[index]
                rows = stage_rows(loaded)
                for i, item in enumerate(rows):
                    progress(i + 1, len(rows), item)
                    yield "row", index, name, item
                collected.append(loaded)
                yield "result", index, name, loaded
                continue
            if stage == "report":
                report = build_report(spec, collected)
                progress(1, 1, report)
                collected.append(report)
                yield "row", index, name, report
                yield "result", index, name, report
                continue
            points = []
            for item in self.stream(request, progress=progress):
                points.append(item)
                yield "row", index, name, item
            folded = self.fold_stage(stage, request, points)
            collected.append(folded)
            yield "result", index, name, folded

    def _spec_events(self, spec: ExperimentSpec, progress):
        """Back-compat shape: ``(kind, stage kind, item)`` triples."""
        kinds = [s["stage"] for s in spec.stages]
        for kind, index, _name, item in self.iter_spec_events(spec, progress):
            yield kind, kinds[index], item

    def stream_spec(self, spec: ExperimentSpec, progress=None):
        """Execute a spec stage by stage, yielding ``(stage, item)``
        pairs: every streamed row of every stage, with each stage's
        folded result available to later stages (the ``report`` stage
        yields its :class:`ReportResult`).  Collecting the rows per
        stage reproduces :meth:`run_spec` bit-identically.
        """
        progress = progress or _noop_progress
        for kind, stage, item in self._spec_events(spec, progress):
            if kind == "row":
                yield stage, item

    def run_spec(self, spec: ExperimentSpec) -> SpecResult:
        """Execute a spec, blocking; one typed result per stage."""
        results = [
            item for kind, _, item in self._spec_events(spec, _noop_progress)
            if kind == "result"
        ]
        return SpecResult(name=spec.name, workload=spec.workload,
                          stages=tuple(results))

    def fold_stage(self, stage: str, request, points):
        """Fold one stage's streamed rows into its typed result.

        ``stage`` is the stage kind (``"map"``/``"batch"``/...); the
        service layer also uses this to fold the rows of a bare request
        job into the result :meth:`run` would have returned.
        """
        if stage == "batch":
            return BatchResult(results=tuple(points))
        if stage == "sweep":
            return self._sweep_result(request, points)
        if stage == "yield":
            return self._yield_result(request, points)
        # single-shot stages (map, area, reorder) stream their one result
        return points[0]

    _RUN = {
        MapRequest: _run_map,
        BatchRequest: _run_batch,
        SweepRequest: _run_sweep,
        YieldRequest: _run_yield,
        AreaRequest: _run_area,
        ReorderRequest: _run_reorder,
        ImportRequest: _run_import,
    }

    _STREAM = {
        MapRequest: _stream_map,
        BatchRequest: _stream_batch,
        SweepRequest: _stream_sweep,
        YieldRequest: _stream_yield,
        AreaRequest: _stream_area,
        ReorderRequest: _stream_reorder,
        ImportRequest: _stream_import,
    }


def stage_payload(result) -> "tuple[str, dict] | None":
    """(stage kind, summary payload) for one stage result.

    The single per-result-type summarizer behind both the spec
    ``report`` stage and the CLI's human stage lines, so the two can
    never drift apart.  Returns ``None`` for result types with no
    summary (e.g. a nested :class:`ReportResult`).
    """
    if isinstance(result, MapResult):
        return "map", {
            "grid": list(result.grid),
            "verified": result.verified,
            "wirelength": result.wirelength,
            "reuse_fraction": result.reuse_fraction,
        }
    if isinstance(result, BatchResult):
        return "batch", {
            "workloads": [r.workload for r in result.results],
            "all_verified": all(r.verified for r in result.results),
        }
    if isinstance(result, SweepResult):
        payload: dict = {"axis": result.sweep, "points": len(result.points)}
        routed = [pt.routed for pt in result.points
                  if hasattr(pt, "routed")]
        if routed:  # analytic axes have no routing verdicts
            payload["routed"] = sum(1 for r in routed if r)
        return "sweep", payload
    if isinstance(result, YieldResult):
        ys = [pt.yield_fraction for pt in result.points]
        return "yield", {
            "campaign": result.campaign,
            "points": len(result.points),
            "min_yield": min(ys) if ys else 0.0,
            "max_yield": max(ys) if ys else 0.0,
        }
    if isinstance(result, ReorderResult):
        return "reorder", {
            "cost_before": result.cost_before,
            "cost_after": result.cost_after,
            "saving": result.saving,
        }
    if isinstance(result, ImportResult):
        return "import", {
            "name": result.name,
            "contexts": result.n_contexts,
            "grid": list(result.grid),
            "verified": result.verified,
            "wirelength": result.wirelength,
            "critical_path": result.critical_path,
        }
    return None


def stage_rows(result) -> list:
    """The streamed rows one stage result folds from (the inverse of
    :meth:`Session.fold_stage`) — what a resumed job replays so its
    event stream stays bit-identical to a fresh run's."""
    if isinstance(result, BatchResult):
        return list(result.results)
    if isinstance(result, (SweepResult, YieldResult)):
        return list(result.points)
    return [result]


def build_report(spec: ExperimentSpec, results) -> ReportResult:
    """Summarize the stages that ran before a ``report`` stage."""
    summary: dict = {
        "spec": spec.name,
        "workload": spec.workload,
        "stages_run": [],
    }
    for res in results:
        named = stage_payload(res)
        if named is None:
            continue
        kind, payload = named
        # repeated stage kinds get numbered keys (sweep, sweep_2, ...)
        # instead of silently overwriting the earlier one
        summary["stages_run"].append(kind)
        key, n = kind, 1
        while key in summary:
            n += 1
            key = f"{kind}_{n}"
        summary[key] = payload
    return ReportResult(summary=summary)


#: Process-wide default session (the shared caches behind the
#: module-level convenience shims in ``analysis/experiments.py`` and
#: ``analysis/dse.py``).
_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The lazily-created process-wide :class:`Session`."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
