"""Simulated-annealing placement.

Places LUT cells onto logic tiles (one LUT slot per tile output — we
place one cell per tile and let the 2-output MCMG packing happen in the
analysis layer) and primary I/O onto perimeter pads.  Supports *pinned*
cells, which is how the multi-context mapper keeps shared cells at the
same physical location across contexts (the prerequisite for their
configuration bits to become CONSTANT patterns).

The annealer is a standard VPR-style schedule: swap/move proposals,
adaptive temperature decay, incremental HPWL via per-net bounding boxes.

Hot-path layout: terminal coordinates live in flat ``name -> int``
maps and every net's bounding-box cost is cached, so a move proposal
recomputes only its affected nets' Manhattan terms (the "before" half
comes from the cache for free).  Perimeter pad assignment uses the
per-grid precomputed distance tables of :func:`distance_tables`.
All of this is cost *evaluation* only — the proposal schedule and RNG
call sequence are untouched, so placements are bit-identical to the
original implementation for a given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.arch.geometry import Coord, Grid
from repro.arch.params import ArchParams
from repro.errors import PlacementError
from repro.netlist.dfg import MultiContextProgram
from repro.netlist.netlist import CellKind, Netlist
from repro.utils.rng import ensure_rng
from repro.utils.telemetry import count as _tcount


@dataclass
class Placement:
    """Placement of one context's netlist.

    ``cells`` maps LUT cell names to tile coordinates; ``ios`` maps
    primary input/output cell names to ``(coord, pad_index)``.
    """

    cells: dict[str, Coord] = field(default_factory=dict)
    ios: dict[str, tuple[Coord, int]] = field(default_factory=dict)
    cost: float = 0.0

    def location(self, cell_name: str) -> Coord:
        if cell_name in self.cells:
            return self.cells[cell_name]
        if cell_name in self.ios:
            return self.ios[cell_name][0]
        raise PlacementError(f"cell {cell_name!r} not placed")


class DistanceTables:
    """Precomputed per-grid geometry tables for placement hot paths.

    ``perimeter`` fixes the pad-candidate iteration order; ``perim_x`` /
    ``perim_y`` are its coordinates as numpy arrays so nearest-pad
    selection is one vectorised Manhattan expression instead of a
    Python loop over tiles.
    """

    __slots__ = ("cols", "rows", "perimeter", "perim_x", "perim_y")

    def __init__(self, cols: int, rows: int) -> None:
        self.cols = cols
        self.rows = rows
        grid = Grid(cols, rows)
        self.perimeter: list[Coord] = list(grid.perimeter())
        self.perim_x = np.array([t.x for t in self.perimeter], dtype=np.float64)
        self.perim_y = np.array([t.y for t in self.perimeter], dtype=np.float64)


@lru_cache(maxsize=32)
def distance_tables(cols: int, rows: int) -> DistanceTables:
    """Cached :class:`DistanceTables` for a grid size."""
    return DistanceTables(cols, rows)


def _net_terminals(netlist: Netlist) -> dict[str, list[str]]:
    """Net -> cell names touching it (driver + fanout), LUT/IO only."""
    terminals: dict[str, list[str]] = {}
    for cell in netlist.cells.values():
        if cell.kind is CellKind.LUT or cell.kind is CellKind.INPUT:
            if cell.output:
                terminals.setdefault(cell.output, []).append(cell.name)
        if cell.kind in (CellKind.LUT, CellKind.OUTPUT):
            for net in cell.inputs:
                terminals.setdefault(net, []).append(cell.name)
        if cell.kind is CellKind.DFF:
            # DFFs live inside the driver/sink LBs in this model; tie the
            # net endpoints to the cells around them.
            for net in cell.inputs:
                terminals.setdefault(net, []).append(cell.name)
            terminals.setdefault(cell.output, []).append(cell.name)
    return terminals


def place(
    netlist: Netlist,
    params: ArchParams,
    seed: int | np.random.Generator | None = 0,
    pinned: dict[str, Coord] | None = None,
    effort: float = 1.0,
    forbidden: "set[Coord] | frozenset[Coord] | None" = None,
) -> Placement:
    """Anneal a placement for ``netlist`` on the ``params`` grid.

    ``pinned`` cells keep their given coordinates; ``effort`` scales the
    move budget (1.0 ≈ VPR default for small designs).  ``forbidden``
    tiles are never used (defective logic sites — the reliability
    subsystem's re-place repair); an empty/absent set leaves the anneal
    trajectory bit-identical to the pre-``forbidden`` placer, since the
    membership test then never fires and the RNG stream is untouched.
    """
    rng = ensure_rng(seed)
    grid = Grid(params.cols, params.rows)
    pinned = dict(pinned or {})
    forbidden = frozenset(forbidden or ())

    movable = [c.name for c in netlist.luts() if c.name not in pinned]
    dffs = [c.name for c in netlist.dffs() if c.name not in pinned]
    movable += dffs
    n_place = len(movable) + len(pinned)
    n_usable = grid.n_tiles - sum(1 for t in grid.tiles() if t in forbidden)
    if n_place > n_usable:
        raise PlacementError(
            f"{n_place} cells exceed {n_usable} usable tiles "
            f"({params.cols}x{params.rows}, {len(forbidden)} forbidden)"
        )

    # --- initial assignment: pinned first, then row-major scan ---------- #
    occupied: dict[Coord, str] = {}
    location: dict[str, Coord] = {}
    for name, coord in pinned.items():
        grid.check(coord)
        if coord in forbidden:
            raise PlacementError(f"pinned cell {name!r} on forbidden tile {coord}")
        if coord in occupied:
            raise PlacementError(f"pinned collision at {coord}")
        occupied[coord] = name
        location[name] = coord
    free_tiles = [
        t for t in grid.tiles() if t not in occupied and t not in forbidden
    ]
    order = rng.permutation(len(free_tiles))
    for name, idx in zip(movable, order):
        t = free_tiles[int(idx)]
        occupied[t] = name
        location[name] = t

    # --- I/O pads: greedy nearest perimeter tile ------------------------- #
    ios = _assign_ios(netlist, params, grid, location, rng)

    # --- build net terminal lists ---------------------------------------- #
    terminals = _net_terminals(netlist)

    nets: list[list[str]] = [t for t in terminals.values() if len(t) > 1]
    cell_nets: dict[str, list[int]] = {}
    for i, t in enumerate(nets):
        for cname in t:
            cell_nets.setdefault(cname, []).append(i)

    # flat terminal coordinate maps: one dict hit per terminal in the
    # annealing inner loop instead of Coord construction + attr access
    px: dict[str, int] = {}
    py: dict[str, int] = {}

    def refresh_xy() -> None:
        for cname, coord in location.items():
            px[cname] = coord.x
            py[cname] = coord.y
        for cname, (coord, _pad) in ios.items():
            px[cname] = coord.x
            py[cname] = coord.y

    refresh_xy()

    def net_cost(i: int) -> int:
        """Half-perimeter bounding box of net ``i`` over the flat maps."""
        minx = maxx = miny = maxy = -1
        for cname in nets[i]:
            x = px.get(cname)
            if x is None:
                continue
            y = py[cname]
            if minx < 0:
                minx = maxx = x
                miny = maxy = y
                continue
            if x < minx:
                minx = x
            elif x > maxx:
                maxx = x
            if y < miny:
                miny = y
            elif y > maxy:
                maxy = y
        if minx < 0:
            return 0
        return (maxx - minx) + (maxy - miny)

    net_cost_cache: list[int] = [net_cost(i) for i in range(len(nets))]
    cost = float(sum(net_cost_cache))

    if not movable:
        return Placement(dict(location), ios, cost)

    # --- annealing schedule ----------------------------------------------- #
    moves_per_t = max(10, int(effort * 10 * (len(movable) ** 1.33)))
    temperature = max(1.0, 0.05 * cost / max(1, len(nets)) * 20)
    min_t = 0.005
    span = max(params.cols, params.rows)

    rounds = 0
    total_accepted = 0
    while temperature > min_t:
        rounds += 1
        accepted = 0
        for _ in range(moves_per_t):
            name = movable[int(rng.integers(len(movable)))]
            src = location[name]
            dx = int(rng.integers(-span, span + 1))
            dy = int(rng.integers(-span, span + 1))
            dst = Coord(
                min(max(src.x + dx, 0), params.cols - 1),
                min(max(src.y + dy, 0), params.rows - 1),
            )
            if dst == src or dst in forbidden:
                continue
            other = occupied.get(dst)
            if other is not None and other in pinned:
                continue
            affected = set(cell_nets.get(name, []))
            if other is not None:
                affected |= set(cell_nets.get(other, []))
            affected_t = tuple(affected)
            before = 0
            for i in affected_t:
                before += net_cost_cache[i]
            # tentative swap
            occupied[dst] = name
            location[name] = dst
            px[name] = dst.x
            py[name] = dst.y
            if other is not None:
                occupied[src] = other
                location[other] = src
                px[other] = src.x
                py[other] = src.y
            else:
                del occupied[src]
            after = 0
            new_costs = []
            for i in affected_t:
                nc = net_cost(i)
                new_costs.append(nc)
                after += nc
            delta = after - before
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                cost += delta
                accepted += 1
                for i, nc in zip(affected_t, new_costs):
                    net_cost_cache[i] = nc
            else:  # revert
                occupied[src] = name
                location[name] = src
                px[name] = src.x
                py[name] = src.y
                if other is not None:
                    occupied[dst] = other
                    location[other] = dst
                    px[other] = dst.x
                    py[other] = dst.y
                else:
                    del occupied[dst]
        total_accepted += accepted
        ratio = accepted / max(1, moves_per_t)
        if ratio > 0.96:
            temperature *= 0.5
        elif ratio > 0.8:
            temperature *= 0.9
        elif ratio > 0.15:
            temperature *= 0.95
        else:
            temperature *= 0.8

    _tcount("placer.rounds", rounds)
    _tcount("placer.moves_proposed", rounds * moves_per_t)
    _tcount("placer.moves_accepted", total_accepted)

    # refresh IO pads for final cell positions
    ios = _assign_ios(netlist, params, grid, location, rng)
    refresh_xy()
    cost = float(sum(net_cost(i) for i in range(len(nets))))
    return Placement(dict(location), ios, cost)


def _assign_ios(
    netlist: Netlist,
    params: ArchParams,
    grid: Grid,
    location: dict[str, Coord],
    rng: np.random.Generator,
) -> dict[str, tuple[Coord, int]]:
    """Assign each primary input/output to a perimeter pad near its logic.

    Candidate distances come from the grid's precomputed
    :class:`DistanceTables`: one vectorised Manhattan evaluation per I/O
    cell, with exhausted tiles masked out.  ``argmin`` returns the first
    minimum in perimeter order — the same tile the original
    tile-by-tile scan picked.
    """
    tables = distance_tables(params.cols, params.rows)
    free = np.full(len(tables.perimeter), params.io_capacity, dtype=np.int64)
    ios: dict[str, tuple[Coord, int]] = {}
    io_cells = netlist.inputs() + netlist.outputs()
    for cell in io_cells:
        # barycenter of connected logic
        if cell.kind is CellKind.INPUT:
            conn = [c for c in netlist.cells.values() if cell.output in c.inputs]
        else:
            drv = netlist.net_driver.get(cell.inputs[0])
            conn = [netlist.cells[drv]] if drv else []
        pts = [location[c.name] for c in conn if c.name in location]
        if pts:
            bx = sum(p.x for p in pts) / len(pts)
            by = sum(p.y for p in pts) / len(pts)
        else:
            bx, by = params.cols / 2, params.rows / 2
        d = np.abs(tables.perim_x - bx) + np.abs(tables.perim_y - by)
        d[free == 0] = np.inf
        idx = int(np.argmin(d))
        if free[idx] == 0:
            raise PlacementError(
                f"out of I/O pads for {cell.name!r} "
                f"(capacity {params.io_capacity}/perimeter tile)"
            )
        pad = params.io_capacity - int(free[idx])
        free[idx] -= 1
        ios[cell.name] = (tables.perimeter[idx], pad)
    return ios


def place_program(
    program: MultiContextProgram,
    params: ArchParams,
    seed: int | np.random.Generator | None = 0,
    share_aware: bool = True,
    effort: float = 1.0,
    forbidden: "set[Coord] | frozenset[Coord] | None" = None,
) -> list[Placement]:
    """Place every context of a multi-context program.

    With ``share_aware=True`` (the proposed mapping style) cells that
    compute the same function of the same primary inputs in different
    contexts are *pinned to the same tile*, so their LUT configuration
    repeats (single-plane) and their routing can be reused — the
    precondition for CONSTANT context patterns.  With False each context
    is placed independently (the conventional/naive baseline).
    ``forbidden`` tiles (defective logic sites) are excluded in every
    context.
    """
    from repro.netlist.sharing import analyze_sharing

    rng = ensure_rng(seed)
    placements: list[Placement] = []

    # signature-group anchors: once any member of a shared group is
    # placed, every later member is pinned to that tile.
    group_of_cell: dict[tuple[int, str], int] = {}
    anchors: dict[int, Coord] = {}
    if share_aware and program.n_contexts > 1:
        report = analyze_sharing(program)
        for gi, group in enumerate(report.shared_groups):
            for c, cell_name in group.members.items():
                group_of_cell[(c, cell_name)] = gi

    for c, netlist in enumerate(program.contexts):
        pinned: dict[str, Coord] = {}
        used_tiles: set[Coord] = set()
        for cell in netlist.luts():
            gi = group_of_cell.get((c, cell.name))
            if gi is not None and gi in anchors and anchors[gi] not in used_tiles:
                # two groups anchored in different contexts may collide on a
                # tile; keep the first and let the annealer place the other
                pinned[cell.name] = anchors[gi]
                used_tiles.add(anchors[gi])
        pl = place(
            netlist, params, seed=rng, pinned=pinned, effort=effort,
            forbidden=forbidden,
        )
        placements.append(pl)
        for cell in netlist.luts():
            gi = group_of_cell.get((c, cell.name))
            if gi is not None and gi not in anchors and cell.name in pl.cells:
                anchors[gi] = pl.cells[cell.name]
    return placements
