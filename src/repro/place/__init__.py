"""Placement: simulated-annealing placer for LUT netlists on the tile grid."""

from repro.place.cost import hpwl_cost
from repro.place.placer import Placement, place, place_program

__all__ = ["Placement", "hpwl_cost", "place", "place_program"]
