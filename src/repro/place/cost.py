"""Placement cost: half-perimeter wirelength (HPWL).

The classic bounding-box estimator: for each net, the half-perimeter of
the smallest rectangle containing its driver and sinks.  Cheap enough to
evaluate incrementally inside the annealer, and monotone with routed
wirelength on island fabrics.
"""

from __future__ import annotations

from repro.arch.geometry import Coord


def net_hpwl(points: list[Coord]) -> int:
    """Half-perimeter of the bounding box of ``points``."""
    if len(points) <= 1:
        return 0
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def hpwl_cost(nets: list[list[Coord]]) -> int:
    """Total HPWL over a list of nets (each a list of terminals)."""
    return sum(net_hpwl(points) for points in nets)
