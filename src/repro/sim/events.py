"""Event-driven logic simulation with per-cell delays.

Complements the levelized simulator: models time, so it can count
transitions (dynamic-power proxy), observe glitches through unbalanced
paths, and simulate the *moment* of a context switch — the event where
a multi-context fabric differs most from a static FPGA.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.netlist.netlist import CellKind, Netlist


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    net: str = field(compare=False)
    value: int = field(compare=False)


@dataclass
class Waveform:
    """Value changes of one net: list of (time, value)."""

    changes: list[tuple[float, int]] = field(default_factory=list)

    def value_at(self, time: float) -> int:
        v = 0
        for t, val in self.changes:
            if t > time:
                break
            v = val
        return v

    @property
    def n_transitions(self) -> int:
        n = 0
        last = None
        for _, v in self.changes:
            if last is not None and v != last:
                n += 1
            last = v
        return n


class EventSimulator:
    """Event-driven simulator over a LUT netlist.

    ``delays`` maps cell names to propagation delays (default 1.0 per
    LUT).  DFFs are edge-triggered by explicit :meth:`clock` calls.
    """

    def __init__(self, netlist: Netlist, delays: dict[str, float] | None = None) -> None:
        netlist.validate()
        self.netlist = netlist
        self.delays = delays or {}
        self.values: dict[str, int] = {}
        self.time = 0.0
        self._seq = 0
        self._queue: list[_Event] = []
        self.waveforms: dict[str, Waveform] = {}
        self._fanout: dict[str, list[str]] = {}
        for cell in netlist.cells.values():
            for net in cell.inputs:
                self._fanout.setdefault(net, []).append(cell.name)
        # initial values: settle the combinational logic at time 0 so the
        # simulator starts from a consistent state (all inputs 0)
        for net in netlist.nets():
            self.values[net] = 0
        self.state: dict[str, int] = {c.name: 0 for c in netlist.dffs()}
        for c in netlist.dffs():
            self.values[c.output] = 0
        for name in netlist.topo_order():
            cell = netlist.cells[name]
            if cell.kind is CellKind.LUT:
                word = 0
                for j, net in enumerate(cell.inputs):
                    word |= self.values[net] << j
                self.values[cell.output] = cell.table.evaluate(word)

    # -- stimulus ------------------------------------------------------- #
    def set_input(self, name: str, value: int, at: float | None = None) -> None:
        """Schedule a primary-input change."""
        cell = self.netlist.cells.get(name)
        if cell is None or cell.kind is not CellKind.INPUT:
            raise SimulationError(f"{name!r} is not a primary input")
        t = self.time if at is None else at
        self._schedule(t, cell.output, value)

    def _schedule(self, time: float, net: str, value: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, _Event(time, self._seq, net, value))

    # -- execution ------------------------------------------------------- #
    def run(self, until: float | None = None) -> int:
        """Process events; returns the number of value changes applied."""
        applied = 0
        while self._queue:
            if until is not None and self._queue[0].time > until:
                break
            ev = heapq.heappop(self._queue)
            self.time = max(self.time, ev.time)
            if self.values.get(ev.net) == ev.value:
                continue
            self.values[ev.net] = ev.value
            self.waveforms.setdefault(ev.net, Waveform()).changes.append(
                (ev.time, ev.value)
            )
            applied += 1
            for cell_name in self._fanout.get(ev.net, []):
                cell = self.netlist.cells[cell_name]
                if cell.kind is CellKind.LUT:
                    word = 0
                    for j, net in enumerate(cell.inputs):
                        word |= self.values[net] << j
                    new = cell.table.evaluate(word)
                    delay = self.delays.get(cell_name, 1.0)
                    self._schedule(ev.time + delay, cell.output, new)
        if until is not None:
            self.time = max(self.time, until)
        return applied

    def clock(self) -> None:
        """Edge-trigger every DFF with its current D value."""
        for c in self.netlist.dffs():
            d = self.values[c.inputs[0]]
            if self.state[c.name] != d:
                self.state[c.name] = d
                self._schedule(self.time, c.output, d)

    # -- observation ------------------------------------------------------ #
    def output_values(self) -> dict[str, int]:
        return {
            c.name: self.values[c.inputs[0]] for c in self.netlist.outputs()
        }

    def transition_count(self) -> int:
        """Total transitions observed — the dynamic-activity proxy."""
        return sum(w.n_transitions for w in self.waveforms.values())

    def settle(self, inputs: dict[str, int]) -> dict[str, int]:
        """Apply inputs, run to quiescence, return primary outputs."""
        for name, v in inputs.items():
            self.set_input(name, v)
        self.run()
        return self.output_values()
