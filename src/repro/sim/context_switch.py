"""DPGA-style multi-context execution (paper Section 1's use model).

A DPGA "can be sequentially configured as different processors in real
time": contexts execute round-robin, and values crossing a context
boundary are held in context registers.  This module simulates that
schedule on either the source program (golden) or a configured
:class:`~repro.core.fpga.MultiContextFPGA` (device under test), and
accounts the configuration bits flipped per switch — the quantity the
RCM's redundancy exploitation is supposed to keep small.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.fpga import MultiContextFPGA
from repro.errors import SimulationError
from repro.netlist.dfg import MultiContextProgram


@dataclass
class ContextSchedule:
    """Execution order of contexts, default round-robin."""

    order: list[int]
    rounds: int = 1

    @classmethod
    def round_robin(cls, n_contexts: int, rounds: int = 1) -> "ContextSchedule":
        return cls(list(range(n_contexts)), rounds)

    def steps(self) -> list[int]:
        return self.order * self.rounds


@dataclass
class ExecutionTrace:
    """Record of one multi-context run."""

    outputs_per_step: list[dict[str, int]] = field(default_factory=list)
    config_flips_per_switch: list[int] = field(default_factory=list)

    @property
    def total_flips(self) -> int:
        return sum(self.config_flips_per_switch)


class MultiContextExecutor:
    """Run a multi-context program round-robin.

    Values produced by context ``c`` under names that context ``c+1``
    reads as inputs are forwarded through context registers — the
    standard DPGA temporal-pipelining convention.  External inputs are
    supplied per step; register forwarding takes precedence only for
    names not supplied externally.
    """

    def __init__(
        self,
        program: MultiContextProgram,
        device: MultiContextFPGA | None = None,
    ) -> None:
        self.program = program
        self.device = device
        if device is not None and not device.contexts:
            raise SimulationError("device is not configured with the program")

    def run(
        self,
        schedule: ContextSchedule,
        external_inputs: dict[str, int] | list[dict[str, int]] | None = None,
    ) -> ExecutionTrace:
        trace = ExecutionTrace()
        regs: dict[str, int] = {}
        steps = schedule.steps()
        for i, ctx in enumerate(steps):
            netlist = self.program.contexts[ctx]
            if isinstance(external_inputs, list):
                ext = external_inputs[i % len(external_inputs)]
            else:
                ext = external_inputs or {}
            stim: dict[str, int] = {}
            for cell in netlist.inputs():
                if cell.name in ext:
                    stim[cell.name] = ext[cell.name]
                elif cell.output in ext:
                    stim[cell.name] = ext[cell.output]
                elif cell.name in regs:
                    stim[cell.name] = regs[cell.name]
                elif cell.output in regs:
                    stim[cell.name] = regs[cell.output]
                else:
                    stim[cell.name] = 0
            if self.device is not None:
                flips = self.device.switch_context(ctx)
                outs = self.device.evaluate(ctx, stim)
            else:
                flips = 0
                outs = netlist.evaluate_outputs(stim)
            trace.outputs_per_step.append(dict(outs))
            trace.config_flips_per_switch.append(flips)
            # forward outputs into context registers under their own name,
            # stripping a conventional "P_" prefix used by DFG outputs
            for name, v in outs.items():
                regs[name] = v
                if name.startswith("P_"):
                    regs[name[2:]] = v
        return trace

    def compare_device_vs_golden(
        self,
        schedule: ContextSchedule,
        external_inputs: dict[str, int] | None = None,
    ) -> None:
        """Run both models and raise on any output divergence."""
        if self.device is None:
            raise SimulationError("no device attached")
        golden = MultiContextExecutor(self.program, device=None).run(
            schedule, external_inputs
        )
        dut = self.run(schedule, external_inputs)
        for step, (a, b) in enumerate(
            zip(golden.outputs_per_step, dut.outputs_per_step)
        ):
            if a != b:
                raise SimulationError(
                    f"step {step}: device outputs {b} != golden {a}"
                )
