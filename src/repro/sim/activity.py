"""Switching-activity estimation for dynamic-power accounting.

Estimates per-net toggle rates by bit-parallel simulation over random
(or supplied) stimulus streams: for each net, the fraction of adjacent
vector pairs on which its value changes.  Feeds the dynamic-logic term
of :mod:`repro.core.power` and gives the event-driven simulator's
glitch counts a zero-delay baseline to compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.netlist.netlist import CellKind, Netlist
from repro.sim.levelized import LevelizedSimulator
from repro.utils.rng import ensure_rng


@dataclass
class ActivityReport:
    """Per-net toggle rates over a stimulus stream."""

    rates: dict[str, float]
    n_transitions_total: float
    vectors: int

    def rate(self, net: str) -> float:
        if net not in self.rates:
            raise SimulationError(f"no activity recorded for net {net!r}")
        return self.rates[net]

    def hottest(self, k: int = 5) -> list[tuple[str, float]]:
        return sorted(self.rates.items(), key=lambda kv: -kv[1])[:k]

    def mean_rate(self) -> float:
        if not self.rates:
            return 0.0
        return sum(self.rates.values()) / len(self.rates)


def estimate_activity(
    netlist: Netlist,
    n_vectors: int = 1024,
    seed: int | np.random.Generator | None = 0,
    stimulus: dict[str, np.ndarray] | None = None,
) -> ActivityReport:
    """Toggle rate per net under random (or supplied) stimulus.

    Vectors are packed 64 per word; the toggle count of a net is the
    popcount of ``v ^ (v >> 1)`` across lanes (with cross-word stitching),
    so the whole estimate is a handful of NumPy ops per net.
    """
    if n_vectors < 2:
        raise SimulationError("need at least 2 vectors to observe a toggle")
    rng = ensure_rng(seed)
    sim = LevelizedSimulator(netlist)
    words = (n_vectors + 63) // 64
    n_vectors = words * 64  # bit-parallel lanes come in whole words
    if stimulus is None:
        stimulus = {
            c.output: rng.integers(0, 2**63, words, dtype=np.int64).astype(np.uint64)
            for c in netlist.inputs()
        }
    values = sim.run(stimulus)

    rates: dict[str, float] = {}
    total = 0.0
    for net, packed in values.items():
        toggles = 0
        prev_last_bit: int | None = None
        for w in range(packed.size):
            word = int(packed[w])
            # transitions inside the word: bit i vs bit i+1
            inside = (word ^ (word >> 1)) & ((1 << 63) - 1)
            toggles += bin(inside).count("1")
            if prev_last_bit is not None:
                if (word & 1) != prev_last_bit:
                    toggles += 1
            prev_last_bit = (word >> 63) & 1
        pairs = n_vectors - 1
        rates[net] = toggles / pairs if pairs else 0.0
        total += toggles
    return ActivityReport(rates, total, n_vectors)


def dynamic_logic_energy(
    report: ActivityReport,
    netlist: Netlist,
    energy_per_toggle: float = 1.0,
) -> float:
    """Energy proxy: sum of LUT-output toggle rates.

    Identical mapped circuits draw identical logic energy on any of the
    three fabrics — this term cancels in fabric comparisons but completes
    energy-per-computation accounting.
    """
    total = 0.0
    for cell in netlist.luts():
        total += report.rates.get(cell.output, 0.0)
    return total * energy_per_toggle
