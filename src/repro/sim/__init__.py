"""Simulators: levelized and event-driven logic simulation, plus the
DPGA-style multi-context execution model."""

from repro.sim.context_switch import ContextSchedule, MultiContextExecutor
from repro.sim.events import EventSimulator, Waveform
from repro.sim.levelized import LevelizedSimulator

__all__ = [
    "ContextSchedule",
    "EventSimulator",
    "LevelizedSimulator",
    "MultiContextExecutor",
    "Waveform",
]
