"""Levelized (oblivious) simulation with NumPy bit-parallelism.

Evaluates a netlist over many stimulus vectors at once: each net holds a
uint64 array where every *bit lane* is an independent vector, giving
64-way parallelism per word — the classic bit-parallel trick for fast
functional regression of mapped designs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.netlist.netlist import CellKind, Netlist


class LevelizedSimulator:
    """Bit-parallel levelized simulator for combinational netlists."""

    def __init__(self, netlist: Netlist) -> None:
        netlist.validate()
        self.netlist = netlist
        self.order = [
            name
            for name in netlist.topo_order()
            if netlist.cells[name].kind is CellKind.LUT
        ]

    def run(self, stimulus: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Evaluate over packed-uint64 stimulus.

        Each input maps to a uint64 array; bit lane ``i`` of word ``w``
        is vector ``64*w + i``.  Returns packed values for every net.
        """
        values: dict[str, np.ndarray] = {}
        width = None
        for cell in self.netlist.inputs():
            arr = stimulus.get(cell.output, stimulus.get(cell.name))
            if arr is None:
                raise SimulationError(f"missing stimulus for {cell.name!r}")
            arr = np.asarray(arr, dtype=np.uint64)
            if width is None:
                width = arr.shape
            elif arr.shape != width:
                raise SimulationError("stimulus arrays must share a shape")
            values[cell.output] = arr
        if width is None:
            width = (1,)
        zero = np.zeros(width, dtype=np.uint64)
        for cell in self.netlist.dffs():
            values[cell.output] = zero

        for name in self.order:
            cell = self.netlist.cells[name]
            ins = [values[n] for n in cell.inputs]
            values[cell.output] = _apply_table(cell.table.bits, ins, width)
        return values

    def outputs(self, stimulus: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        values = self.run(stimulus)
        return {
            c.name: values[c.inputs[0]] for c in self.netlist.outputs()
        }

    @staticmethod
    def random_stimulus(
        netlist: Netlist, n_words: int = 4, seed: int = 0
    ) -> dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        return {
            c.output: rng.integers(0, 2**63, size=n_words, dtype=np.int64).astype(
                np.uint64
            )
            for c in netlist.inputs()
        }


def _apply_table(bits: int, ins: list[np.ndarray], width) -> np.ndarray:
    """Bit-parallel LUT evaluation via Shannon expansion over the inputs."""
    if not ins:
        full = np.uint64(0xFFFFFFFFFFFFFFFF)
        return np.full(width, full if bits & 1 else np.uint64(0), dtype=np.uint64)
    x = ins[-1]
    n = len(ins)
    half = 1 << (n - 1)
    mask_low = (1 << half) - 1
    f0 = _apply_table(bits & mask_low, ins[:-1], width)
    f1 = _apply_table((bits >> half) & mask_low, ins[:-1], width)
    return (f1 & x) | (f0 & ~x)
