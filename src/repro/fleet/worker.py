"""Fleet workers: run a leased job and stream its events home.

Two executors share one engine.  :func:`iter_task_events` turns a
leased task document into the wire event stream — ``row`` events
carrying exactly what ``Session.stream`` yields (so fleet rows are
bit-identical to the blocking result), ``stage`` events carrying each
folded stage result, and a final ``done`` event with the full typed
result payload.  The coordinator's process-per-job executor drains it
over a pipe; :class:`FleetWorker` drains it over HTTP — which is how
sequential/thread/process/remote all produce the same rows.

A :class:`FleetWorker` (the ``repro worker`` CLI) is a pull-based
client: it long-polls ``POST /v1/workers/lease``, runs the granted
job through its **own** :class:`~repro.api.Session`, posts each event
to ``POST /v1/workers/{lease}/events`` (every post renews the lease;
an idle stretch is covered by a heartbeat thread at ttl/3), and lets
the ``done`` event commit the result coordinator-side.  On a 410 the
worker abandons the attempt — the lease expired and the job already
belongs to someone else; on ``{"cancelled": true}`` it stops at the
next event boundary.  Workers never need cleanup on death: the lease
TTL is the crash protocol.
"""

from __future__ import annotations

import json
import threading
import time
import traceback as _tb
import urllib.error
import urllib.request

from repro.api import ExperimentSpec, Session, request_from_dict
from repro.api.results import SpecResult, result_from_dict
from repro.api.session import stage_rows
from repro.errors import AuthError, JobError, LeaseExpired

#: Suffix every bare-request TYPE_TAG carries; stripping it yields the
#: stage kind (``map_request`` -> ``map``) the session folds under.
_REQUEST_TAG_SUFFIX = "_request"


def task_stage_kind(task: dict) -> str:
    """The fold-stage kind for a bare-request task document."""
    tag = str(task.get("type", ""))
    if not tag.endswith(_REQUEST_TAG_SUFFIX):
        raise JobError(f"task type {tag!r} is not a request payload")
    return tag[: -len(_REQUEST_TAG_SUFFIX)]


def iter_task_events(session: Session, lease_doc: dict):
    """Execute a leased task, yielding wire events.

    ``lease_doc`` is what ``POST /v1/workers/lease`` granted: a
    ``task`` payload (spec or request document) plus optional resume
    material (``resume_completed`` stage payloads for specs,
    ``resume_result`` for requests).  Yields::

        {"event": "row",   "stage": name, "data": <row payload>}
        {"event": "stage", "stage": name, "index": i, "kind": k,
         "skipped": bool, "data": <stage result payload>}   (specs)
        {"event": "done",  "result": <result payload>, "skipped": b}

    Rows are ``item.to_dict()`` of exactly what ``Session.stream``
    yields, in stream order — the fleet's bit-identity contract.
    """
    task = lease_doc.get("task")
    if not isinstance(task, dict):
        raise JobError("lease has no task payload")
    if task.get("type") == "experiment_spec" or "stages" in task:
        yield from _iter_spec_events(session, task, lease_doc)
    else:
        yield from _iter_request_events(session, task, lease_doc)


def _iter_spec_events(session: Session, task: dict, lease_doc: dict):
    spec = ExperimentSpec.from_dict(task)
    completed = {
        int(index): result_from_dict(payload)
        for index, payload in
        (lease_doc.get("resume_completed") or {}).items()
    }
    kinds = [stage["stage"] for stage in spec.stages]
    stage_results: list = []
    events = session.iter_spec_events(spec, completed=completed)
    try:
        for kind_tag, index, name, item in events:
            if kind_tag == "row":
                yield {"event": "row", "stage": name,
                       "data": item.to_dict()}
                continue
            stage_results.append(item)
            yield {"event": "stage", "stage": name, "index": index,
                   "kind": kinds[index], "skipped": index in completed,
                   "data": item.to_dict()}
    finally:
        close = getattr(events, "close", None)
        if close is not None:
            close()
    result = SpecResult(name=spec.name, workload=spec.workload,
                        stages=tuple(stage_results))
    yield {"event": "done", "result": result.to_dict()}


def _iter_request_events(session: Session, task: dict, lease_doc: dict):
    request = request_from_dict(task)
    stage_kind = task_stage_kind(task)
    resume_payload = lease_doc.get("resume_result")
    if resume_payload is not None:
        result = result_from_dict(resume_payload)
        for item in stage_rows(result):
            yield {"event": "row", "stage": stage_kind,
                   "data": item.to_dict()}
        yield {"event": "done", "result": result.to_dict(),
               "skipped": True}
        return
    rows = []
    stream = session.stream(request)
    try:
        for item in stream:
            rows.append(item)
            yield {"event": "row", "stage": stage_kind,
                   "data": item.to_dict()}
    finally:
        close = getattr(stream, "close", None)
        if close is not None:
            close()
    result = session.fold_stage(stage_kind, request, rows)
    yield {"event": "done", "result": result.to_dict(),
           "skipped": False}


def process_job_main(conn, lease_doc: dict) -> None:
    """Child entry point for ``JobManager(executor="process")``.

    Runs the leased task in a fresh :class:`Session` and ships every
    wire event over ``conn`` (a multiprocessing pipe) — the same
    stream a remote worker would POST, applied by the same
    coordinator-side commit path.
    """
    session = Session()
    try:
        for event in iter_task_events(session, lease_doc):
            conn.send(event)
    except BaseException as exc:  # the parent turns this into FAILED
        try:
            conn.send({
                "event": "error", "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": "".join(_tb.format_exception(
                    type(exc), exc, exc.__traceback__)),
            })
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            session.close()
        finally:
            conn.close()


class FleetWorker:
    """Pull-based HTTP worker against one coordinator."""

    def __init__(self, url: str, token: "str | None" = None,
                 name: "str | None" = None,
                 session: "Session | None" = None,
                 poll: float = 1.0) -> None:
        self.url = url.rstrip("/")
        self.token = token
        self.name = name or f"worker-{id(self) & 0xffff:04x}"
        self.session = session if session is not None else Session()
        self._owns_session = session is None
        self.poll = max(0.05, float(poll))
        self.jobs_done = 0
        self.jobs_failed = 0

    # -- HTTP plumbing -------------------------------------------------------- #
    def _request(self, method: str, path: str,
                 payload: "dict | None" = None,
                 timeout: float = 60.0) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        req = urllib.request.Request(self.url + path, data=data,
                                     headers=headers, method=method)
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return json.loads(resp.read().decode("utf-8") or "{}")
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except Exception:
                message = str(exc)
            if exc.code == 401:
                raise AuthError(message) from exc
            if exc.code == 410:
                raise LeaseExpired(message) from exc
            raise JobError(
                f"coordinator rejected {method} {path}: "
                f"{exc.code} {message}"
            ) from exc

    # -- lease loop ----------------------------------------------------------- #
    def lease(self, wait: float = 0.0) -> "dict | None":
        """One lease attempt; the granted lease doc or ``None``."""
        doc = self._request(
            "POST", "/v1/workers/lease",
            {"worker": self.name, "wait": wait},
            timeout=max(60.0, wait + 30.0),
        )
        return doc.get("lease")

    def run_once(self, wait: "float | None" = None) -> bool:
        """Lease and run one job; ``True`` if one was granted."""
        lease = self.lease(self.poll if wait is None else wait)
        if lease is None:
            return False
        self._run_lease(lease)
        return True

    def run_forever(self, stop: "threading.Event | None" = None,
                    max_jobs: "int | None" = None,
                    max_errors: int = 10) -> int:
        """Pull-run until ``stop``/``max_jobs``; jobs completed.

        ``max_errors`` consecutive transport failures (coordinator
        gone) end the loop with :class:`~repro.errors.JobError` —
        a dead coordinator must not leave silent zombie workers.
        """
        errors = 0
        while not (stop is not None and stop.is_set()):
            if max_jobs is not None and self.jobs_done >= max_jobs:
                break
            try:
                self.run_once()
            except AuthError:
                raise  # a bad token never fixes itself
            except (urllib.error.URLError, OSError, JobError) as exc:
                errors += 1
                if errors >= max_errors:
                    raise JobError(
                        f"coordinator unreachable after {errors} "
                        f"attempts: {exc}"
                    ) from exc
                time.sleep(self.poll)
            else:
                errors = 0
        return self.jobs_done

    def _run_lease(self, lease: dict) -> None:
        lease_id = lease["lease_id"]
        ttl = float(lease.get("ttl", 30.0))
        cancelled = threading.Event()
        stop_heartbeat = threading.Event()

        def post(events: "list[dict]") -> None:
            doc = self._request(
                "POST", f"/v1/workers/{lease_id}/events",
                {"worker": self.name, "events": events},
            )
            if doc.get("cancelled"):
                cancelled.set()

        def heartbeat() -> None:
            interval = max(0.1, ttl / 3.0)
            while not stop_heartbeat.wait(interval):
                try:
                    post([{"event": "heartbeat"}])
                except LeaseExpired:
                    cancelled.set()
                    return
                except Exception:
                    pass  # transient; the next event post renews too

        pump = threading.Thread(target=heartbeat, daemon=True,
                                name=f"{self.name}-heartbeat")
        pump.start()
        events = iter_task_events(self.session, lease)
        try:
            for event in events:
                if cancelled.is_set():
                    return  # coordinator told us to stop; abandon
                post([event])
            self.jobs_done += 1
        except LeaseExpired:
            return  # the job was requeued out from under us
        except Exception as exc:
            self.jobs_failed += 1
            try:
                post([{
                    "event": "error", "error": str(exc),
                    "error_type": type(exc).__name__,
                    "traceback": "".join(_tb.format_exception(
                        type(exc), exc, exc.__traceback__)),
                }])
            except (LeaseExpired, urllib.error.URLError, OSError,
                    JobError):
                pass
        finally:
            stop_heartbeat.set()
            close = getattr(events, "close", None)
            if close is not None:
                close()
            pump.join(timeout=ttl)

    def close(self) -> None:
        if self._owns_session:
            self.session.close()


def worker_main(url: str, token: "str | None" = None,
                name: "str | None" = None, poll: float = 1.0,
                max_jobs: "int | None" = None, out=print) -> int:
    """Blocking entry point behind ``repro worker``; exit code."""
    worker = FleetWorker(url, token=token, name=name, poll=poll)
    out(f"repro worker {worker.name} pulling from {worker.url}")
    try:
        done = worker.run_forever(max_jobs=max_jobs)
    except KeyboardInterrupt:
        done = worker.jobs_done
    finally:
        worker.close()
    out(f"repro worker {worker.name}: {done} job(s) completed, "
        f"{worker.jobs_failed} failed")
    return 0 if worker.jobs_failed == 0 else 1
