"""Static bearer-token auth for the fleet's HTTP endpoints.

The coordinator loads a JSON token file at startup
(``repro serve --auth tokens.json``)::

    {
      "tokens": [
        {"token": "s3cret-alice", "client": "alice", "quota": 4},
        {"token": "s3cret-fleet", "client": "fleet-workers"}
      ]
    }

Each token names a *client*; ``quota`` (optional) caps that client's
in-flight top-level jobs — the scheduler enforces it, this module just
carries it.  Submit and lease endpoints require a valid
``Authorization: Bearer <token>`` header once auth is configured;
read-only endpoints (status, events, metrics, artifacts) stay open,
matching the usual "writes are authenticated, reads are cluster-
internal" serving posture.

Static tokens are deliberate: the fleet targets lab-internal
deployments where rotating a JSON file is operationally trivial and a
token service is not.  Comparison is constant-time
(:func:`hmac.compare_digest`); error messages never echo the
presented token.
"""

from __future__ import annotations

import hmac
import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import AuthError, RequestError


@dataclass(frozen=True)
class Client:
    """One authenticated principal."""

    name: str
    quota: "int | None" = None


class TokenAuth:
    """Token -> :class:`Client` lookup with constant-time matching."""

    def __init__(self, tokens: "dict[str, Client]") -> None:
        if not tokens:
            raise RequestError("auth config has no tokens")
        self._tokens = dict(tokens)

    @classmethod
    def load(cls, path) -> "TokenAuth":
        """Parse a token file (see module docstring for the format)."""
        path = Path(path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise RequestError(f"cannot read auth config {path}: {exc}") \
                from exc
        entries = doc.get("tokens") if isinstance(doc, dict) else None
        if not isinstance(entries, list):
            raise RequestError(
                f"auth config {path} needs a top-level 'tokens' list"
            )
        tokens: dict[str, Client] = {}
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise RequestError(
                    f"auth config {path}: tokens[{i}] is not an object"
                )
            token = entry.get("token")
            client = entry.get("client")
            if not isinstance(token, str) or not token:
                raise RequestError(
                    f"auth config {path}: tokens[{i}] needs a non-empty "
                    f"'token' string"
                )
            if not isinstance(client, str) or not client:
                raise RequestError(
                    f"auth config {path}: tokens[{i}] needs a non-empty "
                    f"'client' string"
                )
            quota = entry.get("quota")
            if quota is not None and (not isinstance(quota, int)
                                      or quota < 1):
                raise RequestError(
                    f"auth config {path}: tokens[{i}] quota must be a "
                    f"positive int, got {quota!r}"
                )
            if token in tokens:
                raise RequestError(
                    f"auth config {path}: duplicate token at tokens[{i}]"
                )
            tokens[token] = Client(name=client, quota=quota)
        return cls(tokens)

    def authenticate(self, authorization: "str | None") -> Client:
        """The client behind an ``Authorization`` header value.

        Raises :class:`~repro.errors.AuthError` on a missing header,
        a non-bearer scheme, or an unknown token.
        """
        if not authorization:
            raise AuthError("missing Authorization header "
                            "(expected 'Bearer <token>')")
        scheme, _, presented = authorization.partition(" ")
        presented = presented.strip()
        if scheme.lower() != "bearer" or not presented:
            raise AuthError("Authorization header must be "
                            "'Bearer <token>'")
        for token, client in self._tokens.items():
            if hmac.compare_digest(token, presented):
                return client
        raise AuthError("unknown bearer token")

    def quotas(self) -> "dict[str, int]":
        """Per-client quota map for the scheduler."""
        return {c.name: c.quota for c in self._tokens.values()
                if c.quota is not None}

    def __len__(self) -> int:
        return len(self._tokens)
