"""repro.fleet — distributed job execution over the serving contract.

The fleet layer turns one ``repro serve`` coordinator plus N
``repro worker`` processes into a pull-based job fleet speaking
nothing but the api's versioned JSON contract:

- :class:`Scheduler` — priority queue with per-client quotas and
  backpressure, replacing the bare thread-pool hand-off
  (:mod:`repro.fleet.scheduler`);
- :class:`LeaseTable` / :class:`Lease` — TTL-bounded job ownership;
  a dead worker's lease expires and its job requeues
  (:mod:`repro.fleet.leases`);
- :class:`Journal` — append-only NDJSON write-ahead log making the
  coordinator crash-safe (:mod:`repro.fleet.journal`);
- :class:`TokenAuth` — static bearer tokens gating submit/lease
  (:mod:`repro.fleet.auth`);
- :class:`FleetWorker` / :func:`iter_task_events` — the worker engine,
  shared by remote HTTP workers and the coordinator's
  ``executor="process"`` mode so every executor produces bit-identical
  rows (:mod:`repro.fleet.worker`);
- :func:`artifact_index` / :func:`gc_artifacts` — results-dir
  retention (:mod:`repro.fleet.gc`).
"""

from repro.fleet.auth import Client, TokenAuth
from repro.fleet.gc import (
    ArtifactEntry,
    GCReport,
    artifact_index,
    gc_artifacts,
)
from repro.fleet.journal import JOURNAL_NAME, Journal, pending_submissions
from repro.fleet.leases import Lease, LeaseTable
from repro.fleet.scheduler import Scheduler
from repro.fleet.worker import (
    FleetWorker,
    iter_task_events,
    process_job_main,
    worker_main,
)

__all__ = [
    "ArtifactEntry",
    "Client",
    "FleetWorker",
    "GCReport",
    "JOURNAL_NAME",
    "Journal",
    "Lease",
    "LeaseTable",
    "Scheduler",
    "TokenAuth",
    "artifact_index",
    "gc_artifacts",
    "iter_task_events",
    "pending_submissions",
    "process_job_main",
    "worker_main",
]
