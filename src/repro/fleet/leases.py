"""Worker leases: time-bounded ownership of one job by one worker.

A lease is the fleet's liveness contract.  When a worker pulls a job
(``POST /v1/workers/lease``) the coordinator grants a :class:`Lease`
with a TTL; every event batch the worker posts (heartbeats included)
renews it.  A worker that dies — SIGKILL, network partition, wedged
host — simply stops renewing, the coordinator's expiry sweep collects
the lease, and the job goes back to the scheduler with its retry
counter bumped.  No worker-side cleanup is ever required, which is
the entire point of lease-based (rather than connection-based)
ownership.

Event posts against an expired or unknown lease raise
:class:`~repro.errors.LeaseExpired` (HTTP 410): the slow worker's
stale rows must never corrupt the job its successor is re-running.
"""

from __future__ import annotations

import secrets
import threading
import time

from repro.errors import JobError, LeaseExpired


class Lease:
    """One worker's time-bounded claim on one job."""

    __slots__ = ("lease_id", "job", "worker", "ttl", "deadline",
                 "granted_at", "renewals")

    def __init__(self, lease_id: str, job, worker: str, ttl: float,
                 now: float) -> None:
        self.lease_id = lease_id
        self.job = job
        self.worker = worker
        self.ttl = ttl
        self.deadline = now + ttl
        self.granted_at = now
        self.renewals = 0

    def to_dict(self) -> dict:
        return {
            "lease_id": self.lease_id,
            "job_id": self.job.job_id,
            "worker": self.worker,
            "ttl": self.ttl,
            "renewals": self.renewals,
        }


class LeaseTable:
    """All live leases, with TTL-driven expiry collection."""

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: dict[str, Lease] = {}

    def grant(self, job, worker: str = "", ttl: float = 30.0) -> Lease:
        if ttl <= 0:
            raise JobError(f"lease ttl must be positive, got {ttl!r}")
        lease = Lease(f"lease-{secrets.token_hex(8)}", job, worker, ttl,
                      self._clock())
        with self._lock:
            self._leases[lease.lease_id] = lease
        return lease

    def renew(self, lease_id: str) -> Lease:
        """Extend the lease's deadline by its TTL; the fleet's
        heartbeat.  :class:`~repro.errors.LeaseExpired` for an unknown
        or already-collected lease."""
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                raise LeaseExpired(
                    f"lease {lease_id!r} is unknown or expired — its job "
                    f"was requeued or finished; abandon this attempt"
                )
            lease.deadline = self._clock() + lease.ttl
            lease.renewals += 1
            return lease

    def release(self, lease_id: str) -> "Lease | None":
        """Drop a lease (job finished or was cancelled)."""
        with self._lock:
            return self._leases.pop(lease_id, None)

    def expired(self) -> "list[Lease]":
        """Collect (and drop) every lease past its deadline."""
        now = self._clock()
        with self._lock:
            dead = [l for l in self._leases.values() if l.deadline < now]
            for lease in dead:
                del self._leases[lease.lease_id]
            return dead

    def active(self) -> int:
        with self._lock:
            return len(self._leases)

    def snapshot(self) -> "list[dict]":
        with self._lock:
            return [lease.to_dict() for lease in self._leases.values()]
