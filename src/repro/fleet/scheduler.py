"""Priority scheduler for the job fleet: one queue, many pullers.

Replaces the bare ``ThreadPoolExecutor`` hand-off inside the
:class:`~repro.service.jobs.JobManager`: every runnable job lands in
one :class:`Scheduler`, and every executor — local dispatcher threads,
process-per-job dispatchers, remote workers leasing over HTTP — pulls
from it through the same :meth:`Scheduler.pop`.

Policy, in order:

- **priority classes**: higher ``priority`` pops first; within one
  class strictly FIFO (a monotone sequence number breaks ties, so two
  equal-priority submissions never reorder);
- **backpressure**: :meth:`push` raises
  :class:`~repro.errors.QueueFull` once ``max_queue`` jobs are
  pending — the HTTP layer turns that into ``429 + Retry-After``.
  Requeues of already-admitted work (lease expiry, crash recovery)
  bypass the cap with ``force=True``: re-admission is not a new
  submission;
- **per-client quotas**: :meth:`charge` counts *in-flight* (queued or
  running) top-level jobs per client and raises
  :class:`~repro.errors.QuotaExceeded` past the client's cap;
  :meth:`release` returns the slot when the job goes terminal;
- **pause**: a draining coordinator calls :meth:`pause` — pending jobs
  stay queued (and journaled) but :meth:`pop` hands out nothing, so
  SIGTERM stops leasing without losing work.

Everything is condition-guarded; :meth:`pop` blocks up to ``timeout``
and returns ``None`` on expiry, which keeps dispatcher loops polling
cheaply without busy-waiting.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time

from repro.errors import JobError, QueueFull, QuotaExceeded
from repro.utils.telemetry import GLOBAL


class Scheduler:
    """Bounded priority queue with per-client admission quotas."""

    def __init__(self, max_queue: int = 1024,
                 quotas: "dict[str, int] | None" = None) -> None:
        if not isinstance(max_queue, int) or max_queue < 1:
            raise JobError(
                f"max_queue must be a positive int, got {max_queue!r}"
            )
        self.max_queue = max_queue
        #: client name -> max in-flight top-level jobs (absent = unlimited)
        self.quotas = dict(quotas or {})
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: list = []          # (-priority, seq, entry)
        self._entries: dict = {}       # id(job) -> entry
        self._seq = itertools.count()
        self._inflight: dict[str, int] = {}
        self._paused = False

    # -- admission ----------------------------------------------------------- #
    def charge(self, client: "str | None") -> None:
        """Count one in-flight job against ``client``'s quota.

        Raises :class:`~repro.errors.QuotaExceeded` when the client is
        already at its cap; clients without a configured quota are
        unlimited (but still counted, for observability).
        """
        if client is None:
            return
        with self._lock:
            held = self._inflight.get(client, 0)
            quota = self.quotas.get(client)
            if quota is not None and held >= quota:
                GLOBAL.inc("scheduler.rejected", reason="quota")
                raise QuotaExceeded(
                    f"client {client!r} is at its quota of {quota} "
                    f"in-flight job(s) — wait for one to finish"
                )
            self._inflight[client] = held + 1

    def release(self, client: "str | None") -> None:
        """Return ``client``'s quota slot (its job went terminal)."""
        if client is None:
            return
        with self._lock:
            held = self._inflight.get(client, 0)
            if held <= 1:
                self._inflight.pop(client, None)
            else:
                self._inflight[client] = held - 1

    def inflight(self, client: str) -> int:
        with self._lock:
            return self._inflight.get(client, 0)

    # -- queue --------------------------------------------------------------- #
    def push(self, job, priority: int = 0, *, force: bool = False) -> None:
        """Queue ``job``; :class:`~repro.errors.QueueFull` at capacity.

        ``force=True`` (requeues, recovery) always admits.
        """
        with self._cond:
            if not force and len(self._entries) >= self.max_queue:
                GLOBAL.inc("scheduler.rejected", reason="full")
                raise QueueFull(
                    f"job queue is full ({self.max_queue} pending) — "
                    f"retry after a job drains"
                )
            entry = [job, True]
            self._entries[id(job)] = entry
            heapq.heappush(self._heap, (-int(priority), next(self._seq),
                                        entry))
            self._cond.notify()

    def pop(self, timeout: "float | None" = 0.0, *,
            drain: bool = False):
        """The highest-priority pending job, or ``None``.

        Blocks up to ``timeout`` (``0`` = non-blocking, ``None`` =
        forever) for a job to become available.  While paused, nothing
        is handed out unless ``drain=True`` (shutdown uses it to run
        the queue dry without reopening leasing).
        """
        end = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                if not self._paused or drain:
                    while self._heap and not self._heap[0][2][1]:
                        heapq.heappop(self._heap)  # cancelled entry
                    if self._heap:
                        _, _, entry = heapq.heappop(self._heap)
                        job = entry[0]
                        entry[1] = False
                        del self._entries[id(job)]
                        return job
                if end is None:
                    self._cond.wait()
                    continue
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def remove(self, job) -> bool:
        """Drop a still-queued job (cancellation); ``True`` if it was
        pending (and will therefore never be popped)."""
        with self._cond:
            entry = self._entries.pop(id(job), None)
            if entry is None:
                return False
            entry[1] = False
            return True

    def depth(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- drain --------------------------------------------------------------- #
    def pause(self) -> None:
        """Stop handing out jobs (pending work stays queued)."""
        with self._cond:
            self._paused = True
            self._cond.notify_all()

    def resume(self) -> None:
        with self._cond:
            self._paused = False
            self._cond.notify_all()

    @property
    def paused(self) -> bool:
        with self._lock:
            return self._paused

    def wake(self) -> None:
        """Wake every blocked :meth:`pop` (shutdown)."""
        with self._cond:
            self._cond.notify_all()
