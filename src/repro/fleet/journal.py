"""Crash-safe job journal: an append-only NDJSON write-ahead log.

The coordinator journals every job-defining moment — submission
(payload included), state transitions, lease grants — to one
``journal.ndjson`` in the results dir.  A restarted
``repro serve --results-dir`` replays the journal, resubmits every
top-level job whose last recorded state is not terminal (with
``resume=True``, so finished stages come straight back from the
:class:`~repro.service.artifacts.ArtifactStore` instead of
recomputing), and keeps issuing fresh job ids past the highest one
ever journaled.

Records are one JSON object per line::

    {"event": "submit", "job_id": "job-3", "task": {...},
     "priority": 0, "client": "alice", "resume": false}
    {"event": "state", "job_id": "job-3", "state": "running"}
    {"event": "lease", "job_id": "job-3", "lease_id": "lease-...",
     "worker": "w1"}
    {"event": "shutdown", "abandoned": ["job-3"]}

Appends are fsync-free by design (the artifact store is the source of
truth for *results*; the journal only needs to survive process death,
not power loss) but each line is written atomically under a lock.
Replay tolerates a truncated final line — exactly what a crash
mid-append leaves behind — silently, and skips corrupt *mid-file*
lines with a warning plus a ``fleet.journal.skipped`` counter bump
(those indicate damage beyond a normal crash).
"""

from __future__ import annotations

import json
import threading
import warnings
from pathlib import Path

from repro.utils.telemetry import GLOBAL

#: Journal filename inside a results dir.
JOURNAL_NAME = "journal.ndjson"

#: Mirrors :data:`repro.service.jobs.TERMINAL_STATES` (kept local:
#: the jobs module imports this one, not the other way around).
_TERMINAL = ("done", "failed", "cancelled")


class Journal:
    """Append-only NDJSON log of job lifecycle records."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)

    def replay(self) -> "list[dict]":
        """Every parseable record, in append order.

        A truncated or garbled *final* line (the tail a crash leaves)
        is skipped silently — everything before it already told us
        what was in flight.  A corrupt line anywhere *earlier* means
        something else damaged the file (disk fault, manual edit), so
        it is still skipped rather than fatal, but loudly: a warning
        names the line and the ``fleet.journal.skipped`` counter is
        bumped so monitoring sees it.
        """
        if not self.path.is_file():
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        last = len(lines) - 1
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            record = None
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                pass
            if isinstance(record, dict):
                records.append(record)
                continue
            if i == last:
                continue  # crash-truncated tail: expected, silent
            GLOBAL.inc("fleet.journal.skipped")
            warnings.warn(
                f"{self.path}:{i + 1}: skipping corrupt journal "
                f"record (mid-file, not a crash tail)",
                RuntimeWarning, stacklevel=2)
        return records


def pending_submissions(records: "list[dict]"):
    """What a replayed journal says is still owed.

    Returns ``(next_id, submits)`` — the first job-id ordinal safe to
    issue next, and the ``submit`` records (in submission order) of
    every top-level job whose last journaled state is non-terminal.
    """
    submits: dict[str, dict] = {}
    last_state: dict[str, str] = {}
    max_ordinal = 0
    for record in records:
        job_id = record.get("job_id", "")
        if isinstance(job_id, str) and job_id.startswith("job-"):
            try:
                max_ordinal = max(max_ordinal, int(job_id[4:]))
            except ValueError:
                pass
        event = record.get("event")
        if event == "submit":
            submits[job_id] = record
        elif event == "state":
            last_state[job_id] = record.get("state", "")
    pending = [record for job_id, record in submits.items()
               if last_state.get(job_id) not in _TERMINAL]
    return max_ordinal + 1, pending
