"""Artifact retention: index and garbage-collect the results dir.

The :class:`~repro.service.artifacts.ArtifactStore` is a memo table —
every finished stage lands there forever, which is exactly right for
resume and exactly wrong for disk.  This module adds the missing
retention half:

- :func:`artifact_index` — one entry per retention *unit* (a spec run
  directory or a bare request artifact), newest first, with sizes and
  ages; served as ``GET /v1/artifacts``;
- :func:`gc_artifacts` — age- and count-based collection
  (``repro artifacts gc``): drop units older than ``max_age_days``,
  then keep at most ``max_count`` of the newest survivors.

Units, not files: a spec run's stage artifacts and manifest live or
die together (deleting one stage of a run would poison resume with a
half-run that key-matches).  The journal is never touched — it is the
coordinator's crash log, not an artifact.
"""

from __future__ import annotations

import shutil
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ArtifactEntry:
    """One retention unit in the results dir."""

    kind: str          # "spec" | "request"
    name: str          # spec dir name or request artifact stem
    relpath: str       # store-relative path (dir for specs)
    files: int
    bytes: int
    mtime: float       # newest file's mtime (epoch seconds)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "relpath": self.relpath,
            "files": self.files,
            "bytes": self.bytes,
            "mtime": self.mtime,
        }


@dataclass
class GCReport:
    """What one collection pass scanned and removed."""

    scanned: int = 0
    deleted: int = 0
    kept: int = 0
    bytes_freed: int = 0
    dry_run: bool = False
    removed: list = field(default_factory=list)  # relpaths

    def to_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "deleted": self.deleted,
            "kept": self.kept,
            "bytes_freed": self.bytes_freed,
            "dry_run": self.dry_run,
            "removed": list(self.removed),
        }


def _dir_entry(path, relpath: str, kind: str, name: str) -> ArtifactEntry:
    files = [p for p in path.rglob("*") if p.is_file()]
    size = sum(p.stat().st_size for p in files)
    mtime = max((p.stat().st_mtime for p in files), default=0.0)
    return ArtifactEntry(kind=kind, name=name, relpath=relpath,
                         files=len(files), bytes=size, mtime=mtime)


def artifact_index(store) -> "list[ArtifactEntry]":
    """Every retention unit under the store's root, newest first."""
    entries: list[ArtifactEntry] = []
    specs_root = store.root / "specs"
    if specs_root.is_dir():
        for spec_dir in sorted(specs_root.iterdir()):
            if spec_dir.is_dir():
                entries.append(_dir_entry(
                    spec_dir, f"specs/{spec_dir.name}", "spec",
                    spec_dir.name,
                ))
    requests_root = store.root / "requests"
    if requests_root.is_dir():
        for artifact in sorted(requests_root.glob("*.json")):
            if artifact.name == "manifest.json":
                continue
            stat = artifact.stat()
            entries.append(ArtifactEntry(
                kind="request", name=artifact.stem,
                relpath=f"requests/{artifact.name}", files=1,
                bytes=stat.st_size, mtime=stat.st_mtime,
            ))
    entries.sort(key=lambda e: e.mtime, reverse=True)
    return entries


def gc_artifacts(store, max_age_days: "float | None" = None,
                 max_count: "int | None" = None, dry_run: bool = False,
                 now: "float | None" = None) -> GCReport:
    """Collect stale retention units; what survives stays resumable.

    ``max_age_days`` drops every unit whose newest file is older;
    ``max_count`` then keeps only that many of the newest survivors.
    With neither bound this is a no-op report (never "delete
    everything by default").  ``dry_run`` reports without removing.
    """
    entries = artifact_index(store)
    report = GCReport(scanned=len(entries), dry_run=dry_run)
    now = time.time() if now is None else now
    doomed: list[ArtifactEntry] = []
    survivors: list[ArtifactEntry] = []
    for entry in entries:
        if max_age_days is not None and \
                entry.mtime < now - max_age_days * 86400.0:
            doomed.append(entry)
        else:
            survivors.append(entry)
    if max_count is not None and len(survivors) > max_count:
        # entries are newest-first, so the tail is the oldest
        doomed.extend(survivors[max_count:])
        survivors = survivors[:max_count]
    for entry in doomed:
        if not dry_run:
            _remove(store, entry)
        report.deleted += 1
        report.bytes_freed += entry.bytes
        report.removed.append(entry.relpath)
    report.kept = len(survivors)
    return report


def _remove(store, entry: ArtifactEntry) -> None:
    path = store.path_for(entry.relpath)
    if entry.kind == "spec":
        shutil.rmtree(path, ignore_errors=True)
    else:
        path.unlink(missing_ok=True)
        _drop_request_manifest_entry(store, entry.relpath)


def _drop_request_manifest_entry(store, relpath: str) -> None:
    manifest_rel = "requests/manifest.json"
    with store._lock:
        if not store.exists(manifest_rel):
            return
        try:
            manifest = store._read_json(manifest_rel)
        except Exception:
            return  # a damaged manifest is resume's problem, not GC's
        requests = manifest.get("requests")
        if isinstance(requests, dict) and relpath in requests:
            del requests[relpath]
            store._write_json(manifest_rel, manifest)


__all__ = ["ArtifactEntry", "GCReport", "artifact_index", "gc_artifacts"]
