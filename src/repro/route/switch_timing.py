"""Context-switch timing: local RCM decode vs central decoding.

Paper Section 3: "To prevent RCM from degrading the context-switching
speed, context-ID bits are routed with high-speed global wires and
decoded locally with the RCM."  This module models the context-switch
critical path for both organizations:

- **conventional**: a central 2-to-n decoder drives n one-hot plane
  lines across the die; switch time = decoder delay + the RC flight of
  heavily loaded select lines (load grows with the number of cells).
- **proposed**: two (log n) ID bits ride buffered global wires (light
  load, one gate per tile bank), and each tile's RCM decodes locally
  through at most ``depth`` series SEs — depth 1 for LITERAL patterns,
  2 for the Fig. 9 mux trees (one branch level), independent of die
  size.

The asymptotics are the point: conventional switch time grows with the
fabric, proposed stays constant after the global-wire flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError
from repro.route.timing import DelayModel, chain_delay
from repro.utils.bitops import clog2, is_pow2


@dataclass(frozen=True)
class SwitchTimingModel:
    """Normalized context-switch timing constants.

    ``t_wire_per_tile`` is the incremental buffered-wire delay of one
    tile of global-ID routing; ``load_factor`` converts fanout (cells on
    a decoded plane line) into added RC delay for the conventional
    central organization.
    """

    t_decoder_gate: float = 0.6     # one decode gate level
    t_wire_per_tile: float = 0.15   # buffered global wire, per tile span
    load_factor: float = 0.002      # RC per cell hanging on a select line
    t_register: float = 0.5         # context-ID register clk->q

    def conventional_switch_time(
        self, n_contexts: int, n_tiles: int, cells_per_tile: int
    ) -> float:
        """Central decode + loaded one-hot select-line distribution."""
        _check(n_contexts, n_tiles, cells_per_tile)
        k = clog2(n_contexts)
        decode = self.t_register + max(1, k) * self.t_decoder_gate
        span = n_tiles ** 0.5  # die edge in tiles
        wire = span * self.t_wire_per_tile
        load = n_tiles * cells_per_tile * self.load_factor
        return decode + wire + load

    def proposed_switch_time(
        self, n_contexts: int, n_tiles: int, local_decode_depth: int = 2
    ) -> float:
        """Global ID wires + local RCM decode (bounded SE chain)."""
        _check(n_contexts, n_tiles, 1)
        if local_decode_depth < 0:
            raise ArchitectureError("decode depth must be >= 0")
        span = n_tiles ** 0.5
        wire = self.t_register + span * self.t_wire_per_tile
        local = chain_delay(local_decode_depth, DelayModel())
        return wire + local


def _check(n_contexts: int, n_tiles: int, cells_per_tile: int) -> None:
    if not is_pow2(n_contexts):
        raise ArchitectureError("n_contexts must be a power of two")
    if n_tiles < 1:
        raise ArchitectureError("n_tiles must be >= 1")
    if cells_per_tile < 1:
        raise ArchitectureError("cells_per_tile must be >= 1")


def switch_time_sweep(
    tile_counts: list[int],
    n_contexts: int = 4,
    cells_per_tile: int = 288,
    model: SwitchTimingModel | None = None,
) -> list[tuple[int, float, float]]:
    """(tiles, conventional, proposed) context-switch times across die
    sizes — the scaling argument behind local decoding."""
    m = model or SwitchTimingModel()
    return [
        (
            n,
            m.conventional_switch_time(n_contexts, n, cells_per_tile),
            m.proposed_switch_time(n_contexts, n),
        )
        for n in tile_counts
    ]
