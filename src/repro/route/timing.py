"""Timing: SE-chain (RCM) delay vs. buffered double-length lines.

Paper Section 3: "The delay is large if a signal is routed through many
SEs in series" — series pass-gates form an RC ladder whose Elmore delay
grows *quadratically* with chain length, which is why the architecture
adds buffered double-length lines that bypass alternate diamond switches
and routes critical paths over them.

The model:

- a PASS edge (SE pass-gate) appends one (R_pass, C_seg) stage to the
  current unbuffered ladder; its incremental Elmore contribution is
  ``R_pass * C_seg * chain_position`` — the k-th series pass-gate costs
  k times the first one;
- a BUF edge (double-length line driver) adds a fixed buffer delay and
  *resets* the ladder;
- PIN/INTERNAL edges add small constants.

Units are normalized to the delay of one isolated SE hop (R*C = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.compiled import EDGE_KINDS, CompiledRRG
from repro.arch.rrg import EdgeKind, NodeKind, RoutingResourceGraph
from repro.errors import SimulationError
from repro.netlist.netlist import CellKind, Netlist
from repro.route.pathfinder import RouteResult, RoutedNet


@dataclass(frozen=True)
class DelayModel:
    """Normalized delay constants.

    ``r_pass * c_seg`` is the unit; a chain of ``n`` SEs then costs
    ``n*(n+1)/2`` units (Elmore ladder).  ``t_buf`` is the fixed delay of
    a double-length line driver including its two-tile wire flight;
    ``t_pin`` covers connection-block switches; ``t_lut`` one LUT lookup.
    """

    r_pass: float = 1.0
    c_seg: float = 1.0
    t_buf: float = 1.4
    t_pin: float = 0.3
    t_lut: float = 1.0

    def pass_stage(self, chain_position: int) -> float:
        """Incremental Elmore delay of the ``chain_position``-th series SE
        (1-based)."""
        return self.r_pass * self.c_seg * chain_position


def chain_delay(n_series_ses: int, model: DelayModel | None = None) -> float:
    """Total delay of ``n`` SEs in series: the quadratic ladder.

    >>> chain_delay(1)
    1.0
    >>> chain_delay(4)
    10.0
    """
    m = model or DelayModel()
    return sum(m.pass_stage(i) for i in range(1, n_series_ses + 1))


def path_delay(
    g: RoutingResourceGraph | CompiledRRG,
    path: list[int],
    model: DelayModel | None = None,
) -> float:
    """Delay along a node path using edge kinds from the RRG."""
    m = model or DelayModel()
    total = 0.0
    chain = 0
    for a, b in zip(path, path[1:]):
        kind = _edge_kind(g, a, b)
        if kind is EdgeKind.PASS:
            chain += 1
            total += m.pass_stage(chain)
        elif kind is EdgeKind.BUF:
            total += m.t_buf
            chain = 0
        elif kind is EdgeKind.PIN:
            total += m.t_pin
            chain = 0  # connection blocks are buffered in this model
        else:  # INTERNAL
            pass
    return total


def _edge_kind(
    g: RoutingResourceGraph | CompiledRRG, a: int, b: int
) -> EdgeKind:
    if isinstance(g, CompiledRRG):
        dst = g.edge_dst
        for i in range(g.edge_start[a], g.edge_start[a + 1]):
            if dst[i] == b:
                return EDGE_KINDS[g.edge_kind[i]]
        raise SimulationError(f"no RRG edge {a}->{b}")
    for nxt, kind in g.out_edges[a]:
        if nxt == b:
            return kind
    raise SimulationError(f"no RRG edge {a}->{b}")


def route_tree_delays(
    g: RoutingResourceGraph | CompiledRRG,
    net: RoutedNet,
    model: DelayModel | None = None,
) -> dict[int, float]:
    """Source-to-sink delay for every sink of a routed net.

    Walks the route tree from the source, carrying (delay, chain length)
    per node; raises if the route is not a connected tree.
    """
    m = model or DelayModel()
    adj: dict[int, list[int]] = {}
    for a, b in net.edges:
        adj.setdefault(a, []).append(b)
    state: dict[int, tuple[float, int]] = {net.source: (0.0, 0)}
    stack = [net.source]
    while stack:
        nid = stack.pop()
        d, chain = state[nid]
        for nxt in adj.get(nid, []):
            kind = _edge_kind(g, nid, nxt)
            if kind is EdgeKind.PASS:
                nd, nc = d + m.pass_stage(chain + 1), chain + 1
            elif kind is EdgeKind.BUF:
                nd, nc = d + m.t_buf, 0
            elif kind is EdgeKind.PIN:
                nd, nc = d + m.t_pin, 0
            else:
                nd, nc = d, chain
            if nxt not in state or nd < state[nxt][0]:
                state[nxt] = (nd, nc)
                stack.append(nxt)
    out: dict[int, float] = {}
    for sink in net.sinks:
        if sink not in state:
            raise SimulationError(
                f"sink {sink} unreachable in route tree of net {net.name!r}"
            )
        out[sink] = state[sink][0]
    return out


def route_net_delays(
    g: RoutingResourceGraph | CompiledRRG,
    route: RouteResult,
    model: DelayModel | None = None,
) -> dict[str, dict[int, float]]:
    """Per-net sink-delay tables for a whole routed context.

    The cacheable half of :func:`critical_path`: the repair ladder
    computes these once for the golden routing and hands them back via
    ``reuse_delays`` so trials only re-walk the nets they rerouted.
    """
    m = model or DelayModel()
    return {
        net.name: route_tree_delays(g, net, m)
        for net in route.nets.values()
    }


def critical_path(
    g: RoutingResourceGraph | CompiledRRG,
    netlist: Netlist,
    route: RouteResult,
    placement,
    model: DelayModel | None = None,
    reuse_delays: dict[str, dict[int, float]] | None = None,
) -> float:
    """Static timing analysis of one routed context.

    Arrival at a LUT = max over fanin (driver arrival + routed net delay
    to the LUT's sink) + t_lut.  Returns the worst primary-output /
    DFF-input arrival.

    Accepts either graph representation; a (possibly source-stripped)
    :class:`CompiledRRG` resolves edge kinds from its CSR arrays and
    produces bit-identical delays, which is what lets sweep grids run
    without any object graph resident.

    ``reuse_delays`` (from :func:`route_net_delays` on a previous
    routing) supplies ready-made sink-delay tables for nets whose
    ``reused`` flag shows they still carry that exact route — the
    delay walk is a pure function of the route tree, so reusing the
    table is bit-identical to recomputing it.  Nets routed fresh (or
    ripped up, which clears the flag) are always re-walked.
    """
    m = model or DelayModel()
    net_sink_delay: dict[tuple[str, int], float] = {}
    for net in route.nets.values():
        if reuse_delays is not None and net.reused:
            prior = reuse_delays.get(net.name)
            if prior is not None:
                for sink, d in prior.items():
                    net_sink_delay[(net.name, sink)] = d
                continue
        for sink, d in route_tree_delays(g, net, m).items():
            net_sink_delay[(net.name, sink)] = d

    arrivals: dict[str, float] = {}
    for name in netlist.topo_order():
        cell = netlist.cells[name]
        if cell.kind is CellKind.INPUT:
            arrivals[cell.output] = 0.0
        elif cell.kind is CellKind.DFF:
            arrivals[cell.output] = 0.0

    def sink_node_for(cell, slot: int) -> int | None:
        if cell.kind in (CellKind.LUT, CellKind.DFF):
            loc = placement.location(cell.name)
            key = (loc.x, loc.y, slot if cell.kind is CellKind.LUT else 0)
            return g.lb_sink.get(key)
        if cell.kind is CellKind.OUTPUT:
            coord, pad = placement.ios[cell.name]
            return g.io_sink.get((coord.x, coord.y, pad))
        return None

    worst = 0.0
    for name in netlist.topo_order():
        cell = netlist.cells[name]
        if cell.kind not in (CellKind.LUT, CellKind.OUTPUT, CellKind.DFF):
            continue
        arr = 0.0
        for slot, in_net in enumerate(cell.inputs):
            src_arr = arrivals.get(in_net, 0.0)
            sink = sink_node_for(cell, slot)
            wire = net_sink_delay.get((in_net, sink), 0.0) if sink is not None else 0.0
            arr = max(arr, src_arr + wire)
        if cell.kind is CellKind.LUT:
            arr += m.t_lut
            arrivals[cell.output] = arr
        worst = max(worst, arr)
    return worst
