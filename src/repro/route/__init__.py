"""Routing: negotiated-congestion (PathFinder) router and the SE-chain /
double-length-line timing model."""

from repro.route.pathfinder import RouteResult, RoutedNet, route_context, route_program
from repro.route.timing import DelayModel, path_delay, route_tree_delays

__all__ = [
    "DelayModel",
    "RouteResult",
    "RoutedNet",
    "path_delay",
    "route_context",
    "route_program",
    "route_tree_delays",
]
