"""PathFinder negotiated-congestion routing on the RRG.

Classic iterative rip-up-and-reroute: every net is routed by Dijkstra
over the routing-resource graph; node costs grow with present overuse
and accumulated (history) congestion until the solution is overlap-free.
Multi-sink nets route as Steiner-ish trees by re-running Dijkstra from
the partial tree to the nearest remaining sink.

Multi-context specifics: each context is an independent routing problem
on the same RRG, but the *proposed* flow reuses routes for nets that are
identical across contexts (same source and sink nodes) — reused routes
make the corresponding switch patterns CONSTANT, which is what the RCM
rewards (paper Section 3).

Two implementations share this module:

- the **compiled engine** (default) — Dijkstra over the flat CSR arrays
  of a :class:`~repro.arch.compiled.CompiledRRG`, with reusable scratch
  buffers reset by epoch stamping (no per-search allocation), per-net
  bounding-box pruning (with a full-graph fallback, so routability
  never regresses), and a bucket-queue priority queue (Dial's
  algorithm) that visits nodes in exactly the binary heap's order —
  every effective cost is >= 1.0, so bucketing distances by integer
  part preserves the pop order bit-for-bit (``REPRO_ROUTER_QUEUE=heap``
  or :func:`set_router_queue` selects the reference heap);
- the **legacy object-graph router** (``route_context_legacy`` /
  ``route_program_legacy``) — the original dict/set implementation,
  kept verbatim as the reference for the equivalence tests and the
  ``bench_engine_scaling`` baseline.

``route_context`` / ``route_program`` are thin adapters: they accept
either graph representation, lower object graphs on first use (cached
on the graph), and run the compiled engine.  Both engines share cost
arithmetic and tie-breaking, so searches over the same node set are
bit-identical; bounding-box pruning *can* in principle divert a net
whose legacy-optimal detour leaves the terminal box by more than
``BBOX_MARGIN`` tiles while a costlier in-box path exists.  The
equivalence suite (``tests/route/test_compiled_equivalence.py``) pins
bit-identical routes across its workloads, and the scaling bench
asserts equal wirelength at every measured scale, so a divergence
fails loudly rather than shipping silently.

The compiled engine also accepts a
:class:`~repro.reliability.defect_map.DefectMap` (``defects=``):
defective wires/switches are excluded from every search and priced
unroutable in the congestion state, which is what the defect-tolerant
mapping and Monte Carlo yield subsystem (:mod:`repro.reliability`)
rides on.  A clean map is normalised away up front, so defect-free
routing takes the exact original code path.
"""

from __future__ import annotations

import heapq
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.reliability.defect_map import DefectMap

from repro.arch.compiled import (
    KIND_CHANX,
    KIND_CHANY,
    LENGTH_COST_FACTOR,
    CompiledRRG,
    compile_rrg,
)
from repro.arch.rrg import NodeKind, RoutingResourceGraph
from repro.errors import RoutingError
from repro.netlist.dfg import MultiContextProgram
from repro.netlist.netlist import CellKind, Netlist
from repro.place.placer import Placement
from repro.utils.telemetry import count as _tcount

#: PathFinder schedule parameters.
MAX_ITERATIONS = 40
PRES_FAC_FIRST = 0.6
PRES_FAC_MULT = 1.6
HIST_FAC = 0.35

#: Starting pressure factor for warm-started (delta-reroute) calls.  A
#: cold route begins gentle (``PRES_FAC_FIRST``) because early sharing
#: is cheap information about where congestion will form.  A warm
#: repair route already *has* that information — the adopted golden
#: routes — so its fresh nets should treat occupied nodes as expensive
#: from the very first search instead of sharing now and unwinding the
#: collision over several rip-up iterations.  Empirically the reroute
#: count stops improving past ~8 while detour quality is unchanged;
#: escalation still multiplies from here if congestion does persist.
WARM_PRES_FAC = 8.0

#: Tiles of slack added around a net's terminal bounding box before the
#: compiled router prunes the search.  Generous enough that detours under
#: congestion stay inside the box on realistic fabrics; when a search
#: still fails inside the box it is retried unpruned.
BBOX_MARGIN = 3

#: Environment variable selecting the router's priority queue.
ROUTER_QUEUE_ENV = "REPRO_ROUTER_QUEUE"

#: Valid queue implementations: ``"dial"`` (bucket queue, the default)
#: and ``"heap"`` (binary heap, the reference).
ROUTER_QUEUES = ("dial", "heap")


def _queue_from_env() -> str:
    q = os.environ.get(ROUTER_QUEUE_ENV, "dial").strip().lower()
    return q if q in ROUTER_QUEUES else "dial"


#: Active priority-queue implementation.  Every effective node cost is
#: >= 1.0 (base cost >= 1.0, congestion multiplier >= 1, history >= 0),
#: so Dijkstra distances can be bucketed by their integer part (Dial's
#: algorithm): a relaxation from distance ``d`` lands at ``d + cost >=
#: d + 1.0`` — strictly past bucket ``int(d)`` — so draining each
#: bucket in sorted ``(dist, node)`` order reproduces the binary heap's
#: pop order *exactly*, and routes are bit-identical by construction
#: (the equivalence suite pins this).  Occupied bucket indices are kept
#: in a small index heap, so sparse distance ranges (late PathFinder
#: iterations price congested nodes very high) cost nothing to skip.
#: Defaults on; ``REPRO_ROUTER_QUEUE=heap`` (or
#: :func:`set_router_queue`) restores the binary heap.
ROUTER_QUEUE = _queue_from_env()


def set_router_queue(queue: str) -> str:
    """Select the router priority queue (``"dial"`` / ``"heap"``).

    Returns the previous setting so tests can restore it.
    """
    global ROUTER_QUEUE
    if queue not in ROUTER_QUEUES:
        raise ValueError(
            f"queue must be one of {ROUTER_QUEUES}, got {queue!r}"
        )
    previous = ROUTER_QUEUE
    ROUTER_QUEUE = queue
    return previous


@dataclass
class RoutedNet:
    """One routed net: the branch to each sink plus the full node set."""

    name: str
    source: int
    sinks: list[int]
    nodes: set[int] = field(default_factory=set)
    edges: set[tuple[int, int]] = field(default_factory=set)
    sink_paths: dict[int, list[int]] = field(default_factory=dict)
    reused: bool = False


@dataclass
class RouteResult:
    """Routing of one context."""

    nets: dict[str, RoutedNet]
    iterations: int
    context: int = 0

    def used_edges(self) -> set[tuple[int, int]]:
        out: set[tuple[int, int]] = set()
        for net in self.nets.values():
            out |= net.edges
        return out

    def wirelength(self, g: RoutingResourceGraph | CompiledRRG) -> int:
        if isinstance(g, CompiledRRG):
            # one gather over the concatenated node sets; weights are 0
            # for non-wire nodes, so this is the same exact integer sum
            # as the per-node loop (nodes shared by several nets count
            # once per net, as before)
            ids = np.fromiter(
                (nid for net in self.nets.values() for nid in net.nodes),
                dtype=np.int64,
            )
            if ids.size == 0:
                return 0
            return int(g.wire_length_weights()[ids].sum())
        total = 0
        for net in self.nets.values():
            for nid in net.nodes:
                if g.nodes[nid].kind in (NodeKind.CHANX, NodeKind.CHANY):
                    total += g.nodes[nid].length
        return total


def _net_endpoints(
    netlist: Netlist, placement: Placement, g: RoutingResourceGraph | CompiledRRG
) -> list[tuple[str, int, list[int]]]:
    """Extract (net name, source node, sink nodes) for every routable net."""
    out: list[tuple[str, int, list[int]]] = []
    for net_name, driver_name in netlist.net_driver.items():
        driver = netlist.cells[driver_name]
        sinks: list[int] = []
        for cell in netlist.cells.values():
            for slot, in_net in enumerate(cell.inputs):
                if in_net != net_name:
                    continue
                if cell.kind in (CellKind.LUT, CellKind.DFF):
                    loc = placement.location(cell.name)
                    sinks.append(g.lb_sink[(loc.x, loc.y, slot if cell.kind is CellKind.LUT else 0)])
                elif cell.kind is CellKind.OUTPUT:
                    coord, pad = placement.ios[cell.name]
                    sinks.append(g.io_sink[(coord.x, coord.y, pad)])
        if not sinks:
            continue
        if driver.kind is CellKind.INPUT:
            coord, pad = placement.ios[driver.name]
            source = g.io_source[(coord.x, coord.y, pad)]
        elif driver.kind in (CellKind.LUT, CellKind.DFF):
            loc = placement.location(driver.name)
            source = g.lb_source[(loc.x, loc.y, 0)]
        else:
            continue
        out.append((net_name, source, sorted(set(sinks))))
    return out


# ========================================================================= #
# compiled engine
# ========================================================================= #
class RouterScratch:
    """Reusable Dijkstra buffers for one compiled graph.

    ``dist``/``prev`` are never cleared between searches: a per-node
    ``stamp`` records the epoch that last wrote the entry, and a stale
    stamp reads as "unvisited".  One scratch serves any number of
    sequential searches; concurrent searches need one scratch each.
    """

    __slots__ = ("n", "dist", "prev", "stamp", "epoch")

    def __init__(self, n_nodes: int) -> None:
        self.n = n_nodes
        self.dist: list[float] = [0.0] * n_nodes
        self.prev: list[int] = [-1] * n_nodes
        self.stamp: list[int] = [0] * n_nodes
        self.epoch = 0


class ScratchPool:
    """Thread-safe, bounded free-list of :class:`RouterScratch` buffers.

    Scratch buffers are ~3 lists of ``n_nodes`` entries; allocating them
    per routing call dominates short jobs (small contexts in a batch or
    sweep).  The pool keys free buffers by node count, so sequential
    jobs on one substrate reuse a single scratch while concurrent jobs
    each lease their own (epoch stamping makes reuse safe across
    *different* graphs of equal size too — stale stamps read as
    unvisited).

    A sweep over varying grids or channel widths visits many distinct
    graph sizes whose buffers can never serve each other, so the pool
    is bounded both ways: at most ``max_per_size`` free buffers per
    size (surplus concurrent releases become garbage) and at most
    ``max_sizes`` sizes, evicting the least-recently-used size
    wholesale.  :func:`repro.arch.compiled.clear_rrg_cache` also calls
    :meth:`clear`, so dropping the substrates drops their scratch too.

    :data:`SCRATCH_POOL` is the shared module-level instance the
    routing entry points fall back to when no explicit scratch is
    passed; :class:`~repro.analysis.engine.MappingEngine` and the sweep
    runner ride on it implicitly.
    """

    def __init__(self, max_sizes: int = 8, max_per_size: int = 8) -> None:
        self._lock = threading.Lock()
        self._free: dict[int, list[RouterScratch]] = {}  # insertion = LRU
        self.max_sizes = max_sizes
        self.max_per_size = max_per_size

    def acquire(self, n_nodes: int) -> RouterScratch:
        with self._lock:
            free = self._free.get(n_nodes)
            if free:
                scratch = free.pop()
                if free:
                    self._free[n_nodes] = self._free.pop(n_nodes)  # LRU touch
                else:
                    # a drained size must not occupy an LRU slot, or empty
                    # placeholders could evict the one size holding buffers
                    del self._free[n_nodes]
                return scratch
        return RouterScratch(n_nodes)

    def release(self, scratch: RouterScratch) -> None:
        with self._lock:
            free = self._free.get(scratch.n)
            if free is None:
                while len(self._free) >= self.max_sizes:
                    self._free.pop(next(iter(self._free)))  # oldest size
                free = self._free[scratch.n] = []
            else:
                self._free[scratch.n] = self._free.pop(scratch.n)
            if len(free) < self.max_per_size:
                free.append(scratch)

    def clear(self) -> None:
        """Drop every pooled buffer (memory hook for cache clears)."""
        with self._lock:
            self._free.clear()

    @contextmanager
    def lease(self, n_nodes: int):
        scratch = self.acquire(n_nodes)
        try:
            yield scratch
        finally:
            self.release(scratch)

    def size(self) -> int:
        """Free buffers currently pooled (for tests/diagnostics)."""
        with self._lock:
            return sum(len(v) for v in self._free.values())


#: Shared scratch pool for all compiled-router entry points.
SCRATCH_POOL = ScratchPool()


class _FlatCongestion:
    """numpy-backed PathFinder congestion bookkeeping for one context.

    The entire node-cost formula — ``base * (1 + pres_fac * overuse) +
    history`` with ``overuse = max(0, usage + 1 - capacity)`` — is
    folded into one *effective cost* per node, so the Dijkstra relax is
    a single load + add.  ``usage`` and ``history`` are numpy buffers:
    usage add/remove are scatter updates that re-price only the touched
    nodes, and the whole-graph re-price after each PathFinder iteration
    (history bump + pressure escalation) is one vectorised expression.
    The effective costs are mirrored into a plain list for the inner
    loop (list indexing returns the cached float object; numpy scalar
    reads box a fresh one — measurably slower per edge).

    ``overused_ids`` is maintained incrementally by the scatter
    updates, which makes the per-iteration overuse census O(1) and the
    per-net congestion test a set intersection instead of an O(nodes)
    scan.  ``pressured_ids`` (nodes with ``usage + 1 > capacity``, i.e.
    a non-zero overuse term) is maintained the same way: those are the
    only nodes whose folded cost involves ``pres_fac`` at all, so the
    per-iteration escalation re-prices just that set instead of the
    whole graph — every other node's stored value is ``base * 1.0 +
    history`` with both terms unchanged, which is what a full refresh
    would recompute bit-for-bit.  All arithmetic matches the legacy
    router bit-for-bit (the acceptance gate is equal wirelength, but
    the refresh uses the exact same IEEE operations, so routes stay
    identical in practice — the equivalence suite pins this).
    """

    __slots__ = (
        "c", "usage", "history", "eff", "pres_fac", "overused_ids",
        "pressured_ids", "capacity_np",
    )

    def __init__(self, c: CompiledRRG, defects: "DefectMap | None" = None) -> None:
        self.c = c
        self.usage = np.zeros(c.n_nodes, dtype=np.int64)
        self.history = np.zeros(c.n_nodes, dtype=np.float64)
        self.pres_fac = PRES_FAC_FIRST
        self.overused_ids: set[int] = set()
        self.eff: list[float] = []
        # a defect mask zeroes the capacity of dead nodes and prices
        # them infinite (via the history term, which flows through both
        # the whole-graph refresh and the scatter updates unchanged);
        # without defects the capacity view *is* the substrate's array,
        # so the defect-free cost arithmetic is untouched
        if defects is None:
            self.capacity_np = c.node_capacity_np
        else:
            bad = ~defects.node_ok
            self.capacity_np = np.where(bad, 0, c.node_capacity_np)
            self.history[bad] = np.inf
        # zero-capacity nodes (defects) are born pressured: their
        # overuse term is non-zero even at usage 0
        self.pressured_ids: set[int] = set(
            np.flatnonzero(self.capacity_np <= 0).tolist()
        )
        self._refresh_all()

    def _refresh_all(self) -> None:
        """Vectorised whole-graph re-price of the effective costs."""
        over = self.usage + 1 - self.capacity_np
        np.maximum(over, 0, out=over)
        eff = self.c.base_cost_np * (1.0 + self.pres_fac * over) + self.history
        self.eff = eff.tolist()

    def _scatter(self, nodes: set[int], delta: int) -> None:
        idx = np.fromiter(nodes, dtype=np.int64, count=len(nodes))
        usage = self.usage
        usage[idx] += delta
        cap = self.capacity_np[idx]
        used = usage[idx]
        over = np.maximum(used + 1 - cap, 0)
        vals = self.c.base_cost_np[idx] * (1.0 + self.pres_fac * over) \
            + self.history[idx]
        eff = self.eff
        overused_ids = self.overused_ids
        pressured_ids = self.pressured_ids
        for nid, v, congested, pressured in zip(
            idx.tolist(), vals.tolist(), (used > cap).tolist(),
            (over > 0).tolist(),
        ):
            eff[nid] = v
            if congested:
                overused_ids.add(nid)
            else:
                overused_ids.discard(nid)
            if pressured:
                pressured_ids.add(nid)
            else:
                pressured_ids.discard(nid)

    def add(self, nodes: set[int]) -> None:
        self._scatter(nodes, 1)

    def add_batch(self, node_sets: list[set[int]]) -> None:
        """Commit many nets' usage with one vectorised scatter-add.

        Equivalent to ``for nodes in node_sets: self.add(nodes)`` —
        the effective cost of a touched node is re-folded from its
        *final* usage (never accumulated), and no search reads the
        state between the per-net adds it replaces, so one batched
        update reproduces N sequential ones bit-for-bit.  Duplicates
        across nets (a node carried by several committed routes) are
        handled by the unbuffered ``np.add.at``.
        """
        if not node_sets:
            return
        if len(node_sets) == 1:
            self._scatter(node_sets[0], 1)
            return
        idx = np.fromiter(
            (n for nodes in node_sets for n in nodes), dtype=np.int64
        )
        np.add.at(self.usage, idx, 1)
        touched = np.unique(idx)
        cap = self.capacity_np[touched]
        used = self.usage[touched]
        over = np.maximum(used + 1 - cap, 0)
        vals = self.c.base_cost_np[touched] * (1.0 + self.pres_fac * over) \
            + self.history[touched]
        eff = self.eff
        overused_ids = self.overused_ids
        pressured_ids = self.pressured_ids
        for nid, v, congested, pressured in zip(
            touched.tolist(), vals.tolist(), (used > cap).tolist(),
            (over > 0).tolist(),
        ):
            eff[nid] = v
            if congested:
                overused_ids.add(nid)
            else:
                overused_ids.discard(nid)
            if pressured:
                pressured_ids.add(nid)
            else:
                pressured_ids.discard(nid)

    def remove(self, nodes: set[int]) -> None:
        self._scatter(nodes, -1)

    def overused(self) -> int:
        return len(self.overused_ids)

    def bump_history(self) -> None:
        if not self.overused_ids:
            return
        idx = np.fromiter(
            self.overused_ids, dtype=np.int64, count=len(self.overused_ids)
        )
        self.history[idx] += HIST_FAC * (
            self.usage[idx] - self.capacity_np[idx]
        )

    def _reprice_pressured(self) -> None:
        """Re-fold the effective cost of the pressured nodes only.

        After a history bump (touches overused nodes, a subset of the
        pressured set) and a pressure-factor change (only felt by nodes
        with a non-zero overuse term), every non-pressured node's
        stored value is still exactly what :meth:`_refresh_all` would
        write — ``base * 1.0 + history`` with both terms unchanged —
        so re-folding the pressured set reproduces the whole-graph
        refresh bit-for-bit at a fraction of the cost.
        """
        ids = self.pressured_ids
        if not ids:
            return
        _tcount("router.repriced_nodes", len(ids))
        idx = np.fromiter(ids, dtype=np.int64, count=len(ids))
        over = np.maximum(self.usage[idx] + 1 - self.capacity_np[idx], 0)
        vals = self.c.base_cost_np[idx] * (1.0 + self.pres_fac * over) \
            + self.history[idx]
        eff = self.eff
        for nid, v in zip(idx.tolist(), vals.tolist()):
            eff[nid] = v

    def next_iteration(self) -> None:
        """One PathFinder escalation step: history bump, pressure-factor
        growth, and the targeted re-price they both invalidate."""
        _tcount("router.pressure_rounds")
        self.bump_history()
        self.pres_fac *= PRES_FAC_MULT
        self._reprice_pressured()


def _dijkstra_flat(
    c: CompiledRRG,
    state: _FlatCongestion,
    tree_nodes: set[int],
    target: int,
    scratch: RouterScratch,
    mask: bytes | None,
) -> list[int] | None:
    """Shortest path from the route tree to ``target`` over flat arrays.

    ``mask`` is a per-node 0/1 membership mask (the net's expanded
    bounding box); zero-mask nodes are never relaxed.  Returns ``None``
    when ``target`` is unreachable inside the mask (the caller retries
    unmasked); mirrors the legacy router's cost arithmetic and
    tie-breaking exactly otherwise — the full congestion formula is
    pre-folded into ``state.eff``, so a relax is one load + one add.
    """
    scratch.epoch += 1
    ep = scratch.epoch
    dist, prev, stamp = scratch.dist, scratch.prev, scratch.stamp
    eff = state.eff
    estart, emid, edst = c.edge_start, c.edge_mid, c.edge_dst

    heap: list[tuple[float, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    pops = 0
    for n in tree_nodes:
        stamp[n] = ep
        dist[n] = 0.0
        push(heap, (0.0, n))
    while heap:
        d, nid = pop(heap)
        pops += 1
        if d > dist[nid] and stamp[nid] == ep:
            continue
        if nid == target:
            path = [nid]
            tail = nid
            while tail not in tree_nodes:
                tail = prev[tail]
                path.append(tail)
            path.reverse()
            _tcount("router.pops", pops, queue="heap")
            return path
        lo, mid, hi = estart[nid], emid[nid], estart[nid + 1]
        # non-SINK destinations (bulk of the fan-out, no kind test needed)
        for nxt in edst[lo:mid]:
            if mask is not None and not mask[nxt]:
                continue
            nd = d + eff[nxt]
            if stamp[nxt] != ep or nd < dist[nxt]:
                stamp[nxt] = ep
                dist[nxt] = nd
                prev[nxt] = nid
                push(heap, (nd, nxt))
        # SINK destinations: only the net's own target is enterable
        for nxt in edst[mid:hi]:
            if nxt != target:
                continue
            nd = d + eff[nxt]
            if stamp[nxt] != ep or nd < dist[nxt]:
                stamp[nxt] = ep
                dist[nxt] = nd
                prev[nxt] = nid
                push(heap, (nd, nxt))
    _tcount("router.pops", pops, queue="heap")
    return None


def _dijkstra_flat_edges(
    c: CompiledRRG,
    state: _FlatCongestion,
    tree_nodes: set[int],
    target: int,
    scratch: RouterScratch,
    mask: bytes | None,
    edge_ok: bytes,
) -> list[int] | None:
    """:func:`_dijkstra_flat` with a per-edge usability mask.

    Only used when a defect map contains *switch* (edge) defects — the
    common healthy/wire-defect paths keep the leaner loop that never
    materialises edge indexes.  Identical cost arithmetic and
    tie-breaking otherwise, so an all-ones ``edge_ok`` reproduces
    :func:`_dijkstra_flat` exactly.
    """
    scratch.epoch += 1
    ep = scratch.epoch
    dist, prev, stamp = scratch.dist, scratch.prev, scratch.stamp
    eff = state.eff
    estart, emid, edst = c.edge_start, c.edge_mid, c.edge_dst

    heap: list[tuple[float, int]] = []
    push = heapq.heappush
    pop = heapq.heappop
    pops = 0
    for n in tree_nodes:
        stamp[n] = ep
        dist[n] = 0.0
        push(heap, (0.0, n))
    while heap:
        d, nid = pop(heap)
        pops += 1
        if d > dist[nid] and stamp[nid] == ep:
            continue
        if nid == target:
            path = [nid]
            tail = nid
            while tail not in tree_nodes:
                tail = prev[tail]
                path.append(tail)
            path.reverse()
            _tcount("router.pops", pops, queue="heap")
            return path
        lo, mid, hi = estart[nid], emid[nid], estart[nid + 1]
        for ei in range(lo, mid):
            if not edge_ok[ei]:
                continue
            nxt = edst[ei]
            if mask is not None and not mask[nxt]:
                continue
            nd = d + eff[nxt]
            if stamp[nxt] != ep or nd < dist[nxt]:
                stamp[nxt] = ep
                dist[nxt] = nd
                prev[nxt] = nid
                push(heap, (nd, nxt))
        for ei in range(mid, hi):
            nxt = edst[ei]
            if nxt != target or not edge_ok[ei]:
                continue
            nd = d + eff[nxt]
            if stamp[nxt] != ep or nd < dist[nxt]:
                stamp[nxt] = ep
                dist[nxt] = nd
                prev[nxt] = nid
                push(heap, (nd, nxt))
    _tcount("router.pops", pops, queue="heap")
    return None


#: Bucket index for infinitely-priced nodes (defect pricing).  Every
#: real caller mask-excludes such nodes, so this bucket only exists to
#: keep reachability semantics identical for direct searches; expansion
#: order *within* the infinite bucket is by node id per drain round.
_INF_BUCKET = float("inf")


def _dijkstra_flat_dial(
    c: CompiledRRG,
    state: _FlatCongestion,
    tree_nodes: set[int],
    target: int,
    scratch: RouterScratch,
    mask: bytes | None,
) -> list[int] | None:
    """:func:`_dijkstra_flat` with a bucket queue (Dial's algorithm).

    Every effective node cost is >= 1.0, so a relaxation from distance
    ``d`` lands strictly past bucket ``int(d)``; draining buckets in
    index order, each sorted by ``(dist, node)``, visits nodes in
    exactly the binary heap's pop order — same routes, bit for bit.
    Occupied bucket indices live in a small index heap (``order``), so
    the sparse distance ranges of late PathFinder iterations cost
    nothing to scan; pushes are an append instead of an O(log n)
    sift.
    """
    scratch.epoch += 1
    ep = scratch.epoch
    dist, prev, stamp = scratch.dist, scratch.prev, scratch.stamp
    eff = state.eff
    estart, emid, edst = c.edge_start, c.edge_mid, c.edge_dst

    first: list[tuple[float, int]] = []
    buckets: dict[float, list[tuple[float, int]]] = {0: first}
    order: list[float] = [0]  # heap of occupied bucket indices
    push_order = heapq.heappush
    pop_order = heapq.heappop
    pops = 0
    for n in tree_nodes:
        stamp[n] = ep
        dist[n] = 0.0
        first.append((0.0, n))
    while order:
        bucket = buckets.pop(pop_order(order))
        bucket.sort()
        for d, nid in bucket:
            pops += 1
            if d > dist[nid] and stamp[nid] == ep:
                continue
            if nid == target:
                path = [nid]
                tail = nid
                while tail not in tree_nodes:
                    tail = prev[tail]
                    path.append(tail)
                path.reverse()
                _tcount("router.pops", pops, queue="dial")
                return path
            lo, mid, hi = estart[nid], emid[nid], estart[nid + 1]
            # non-SINK destinations (bulk of the fan-out)
            for nxt in edst[lo:mid]:
                if mask is not None and not mask[nxt]:
                    continue
                nd = d + eff[nxt]
                if stamp[nxt] != ep or nd < dist[nxt]:
                    stamp[nxt] = ep
                    dist[nxt] = nd
                    prev[nxt] = nid
                    bi = int(nd) if nd != _INF_BUCKET else _INF_BUCKET
                    b = buckets.get(bi)
                    if b is None:
                        buckets[bi] = [(nd, nxt)]
                        push_order(order, bi)
                    else:
                        b.append((nd, nxt))
            # SINK destinations: only the net's own target is enterable
            for nxt in edst[mid:hi]:
                if nxt != target:
                    continue
                nd = d + eff[nxt]
                if stamp[nxt] != ep or nd < dist[nxt]:
                    stamp[nxt] = ep
                    dist[nxt] = nd
                    prev[nxt] = nid
                    bi = int(nd) if nd != _INF_BUCKET else _INF_BUCKET
                    b = buckets.get(bi)
                    if b is None:
                        buckets[bi] = [(nd, nxt)]
                        push_order(order, bi)
                    else:
                        b.append((nd, nxt))
    _tcount("router.pops", pops, queue="dial")
    return None


def _dijkstra_flat_edges_dial(
    c: CompiledRRG,
    state: _FlatCongestion,
    tree_nodes: set[int],
    target: int,
    scratch: RouterScratch,
    mask: bytes | None,
    edge_ok: bytes,
) -> list[int] | None:
    """:func:`_dijkstra_flat_edges` with the bucket queue of
    :func:`_dijkstra_flat_dial` (same cost arithmetic and visiting
    order as the heap variant; adds the per-edge usability test)."""
    scratch.epoch += 1
    ep = scratch.epoch
    dist, prev, stamp = scratch.dist, scratch.prev, scratch.stamp
    eff = state.eff
    estart, emid, edst = c.edge_start, c.edge_mid, c.edge_dst

    first: list[tuple[float, int]] = []
    buckets: dict[float, list[tuple[float, int]]] = {0: first}
    order: list[float] = [0]
    push_order = heapq.heappush
    pop_order = heapq.heappop
    pops = 0
    for n in tree_nodes:
        stamp[n] = ep
        dist[n] = 0.0
        first.append((0.0, n))
    while order:
        bucket = buckets.pop(pop_order(order))
        bucket.sort()
        for d, nid in bucket:
            pops += 1
            if d > dist[nid] and stamp[nid] == ep:
                continue
            if nid == target:
                path = [nid]
                tail = nid
                while tail not in tree_nodes:
                    tail = prev[tail]
                    path.append(tail)
                path.reverse()
                _tcount("router.pops", pops, queue="dial")
                return path
            lo, mid, hi = estart[nid], emid[nid], estart[nid + 1]
            for ei in range(lo, mid):
                if not edge_ok[ei]:
                    continue
                nxt = edst[ei]
                if mask is not None and not mask[nxt]:
                    continue
                nd = d + eff[nxt]
                if stamp[nxt] != ep or nd < dist[nxt]:
                    stamp[nxt] = ep
                    dist[nxt] = nd
                    prev[nxt] = nid
                    bi = int(nd) if nd != _INF_BUCKET else _INF_BUCKET
                    b = buckets.get(bi)
                    if b is None:
                        buckets[bi] = [(nd, nxt)]
                        push_order(order, bi)
                    else:
                        b.append((nd, nxt))
            for ei in range(mid, hi):
                nxt = edst[ei]
                if nxt != target or not edge_ok[ei]:
                    continue
                nd = d + eff[nxt]
                if stamp[nxt] != ep or nd < dist[nxt]:
                    stamp[nxt] = ep
                    dist[nxt] = nd
                    prev[nxt] = nid
                    bi = int(nd) if nd != _INF_BUCKET else _INF_BUCKET
                    b = buckets.get(bi)
                    if b is None:
                        buckets[bi] = [(nd, nxt)]
                        push_order(order, bi)
                    else:
                        b.append((nd, nxt))
    _tcount("router.pops", pops, queue="dial")
    return None


def _net_bbox(
    c: CompiledRRG, source: int, sinks: list[int], margin: int = BBOX_MARGIN
) -> tuple[int, int, int, int]:
    """Margin-expanded terminal bounding box ``(xlo, xhi, ylo, yhi)``."""
    xlo, xhi, ylo, yhi = c.xlo, c.xhi, c.ylo, c.yhi
    bxlo, bxhi = xlo[source], xhi[source]
    bylo, byhi = ylo[source], yhi[source]
    for s in sinks:
        if xlo[s] < bxlo:
            bxlo = xlo[s]
        if xhi[s] > bxhi:
            bxhi = xhi[s]
        if ylo[s] < bylo:
            bylo = ylo[s]
        if yhi[s] > byhi:
            byhi = yhi[s]
    return bxlo - margin, bxhi + margin, bylo - margin, byhi + margin


def _bbox_covers_fabric(c: CompiledRRG, box: tuple[int, int, int, int]) -> bool:
    bxlo, bxhi, bylo, byhi = box
    p = c.params
    return bxlo <= -1 and bylo <= -1 and bxhi >= p.cols and byhi >= p.rows


def _net_mask(
    c: CompiledRRG, source: int, sinks: list[int], margin: int = BBOX_MARGIN
) -> bytes | None:
    """Bounding-box prune mask for a net, ``None`` when it cannot prune."""
    box = _net_bbox(c, source, sinks, margin)
    if _bbox_covers_fabric(c, box):
        return None  # box covers the whole fabric; masking is pure overhead
    return c.bbox_mask(*box)


def _route_net_flat(
    c: CompiledRRG,
    state: _FlatCongestion,
    name: str,
    source: int,
    sinks: list[int],
    scratch: RouterScratch,
    mask: bytes | None,
    base_mask: bytes | None = None,
    edge_ok: bytes | None = None,
    retry: bool = True,
    seed_paths: dict[int, list[int]] | None = None,
) -> RoutedNet | None:
    """Route one net.  ``mask`` is the net's (defect-combined) prune
    mask; ``base_mask`` is the defect-only floor the full-graph retry
    must keep honouring (``None`` without defects), and ``edge_ok``
    switches to the per-edge Dijkstra variant when switch defects
    exist.  ``retry=False`` (the wavefront path) returns ``None``
    instead of retrying unmasked/raising — a failed wave net must be
    re-run sequentially, where the full-graph retry sees every earlier
    net's congestion.

    ``seed_paths`` (delta-reroute) pre-adopts known-good source→sink
    branches — the healthy portion of a dirty net's golden route —
    so only the broken sinks are searched, and those searches start
    from the salvaged tree instead of the bare source."""
    dial = ROUTER_QUEUE == "dial"
    if edge_ok is None:
        search = _dijkstra_flat_dial if dial else _dijkstra_flat
    else:
        edges_search = _dijkstra_flat_edges_dial if dial \
            else _dijkstra_flat_edges
        search = lambda *a: edges_search(*a, edge_ok)  # noqa: E731
    net = RoutedNet(name, source, list(sinks))
    net.nodes = {source}
    if seed_paths:
        for sink, path in seed_paths.items():
            net.sink_paths[sink] = list(path)
            for a, b in zip(path, path[1:]):
                net.edges.add((a, b))
            net.nodes.update(path)
    for sink in sinks:
        if sink in net.sink_paths:
            continue
        path = search(c, state, net.nodes, sink, scratch, mask)
        if path is None and retry and mask is not base_mask:
            # the pruned region disconnected this sink — retry without
            # the bounding box (defective resources stay excluded)
            path = search(c, state, net.nodes, sink, scratch, base_mask)
        if path is None:
            if not retry:
                return None
            raise RoutingError(
                f"no path to sink node {sink} ({c.node_name(sink)})"
            )
        net.sink_paths[sink] = list(path)
        for a, b in zip(path, path[1:]):
            net.edges.add((a, b))
        net.nodes.update(path)
    return net


def _healthy_sink_paths(
    prior: RoutedNet, defects: "DefectMap"
) -> dict[int, list[int]]:
    """Full source→sink chains of a golden route untouched by defects.

    A dirty net is dirty because *some* branch crosses a dead resource;
    sinks whose entire chain back to the source is healthy can adopt it
    verbatim (delta-reroute salvage).  ``sink_paths`` stores incremental
    branches (each starts at a node of an earlier branch), so the chain
    is reconstructed through parent pointers — a branch that merely
    *hangs off* a broken branch is correctly rejected.  A chain is
    healthy when every node on it is alive and, with switch defects
    present, no consecutive pair is a dead edge.
    """
    parent: dict[int, int] = {}
    for branch in prior.sink_paths.values():
        for a, b in zip(branch, branch[1:]):
            parent.setdefault(b, a)
    node_ok = defects.node_ok
    bad_edges = defects.bad_edge_pairs
    limit = len(parent) + 1
    keep: dict[int, list[int]] = {}
    for sink in prior.sink_paths:
        chain = [sink]
        node = sink
        while node != prior.source:
            node = parent.get(node, -1)
            if node < 0 or len(chain) > limit:
                break
            chain.append(node)
        if chain[-1] != prior.source:
            continue  # malformed tree record: don't salvage this sink
        chain.reverse()
        if not bool(node_ok[chain].all()):
            continue
        if bad_edges and any(
            (a, b) in bad_edges for a, b in zip(chain, chain[1:])
        ):
            continue
        keep[sink] = chain
    return keep


def _boxes_interact(
    a: tuple[int, int, int, int], b: tuple[int, int, int, int], span: int
) -> bool:
    """Whether two nets' prune masks can share a node.

    A node's spatial extent covers at most ``span`` tiles per axis, so
    two terminal boxes can only admit a common node when they are
    within ``span - 1`` tiles of each other in *both* axes — a gap of
    ``span`` or more in either axis proves the masks disjoint.
    """
    if b[0] - a[1] >= span or a[0] - b[1] >= span:
        return False
    if b[2] - a[3] >= span or a[2] - b[3] >= span:
        return False
    return True


def _route_initial_waves(
    c: CompiledRRG,
    state: _FlatCongestion,
    endpoints: list[tuple[str, int, list[int]]],
    reuse: dict[str, RoutedNet] | None,
    routes: dict[str, RoutedNet],
    mask_for,
    base_mask: bytes | None,
    edge_ok: bytes | None,
    scratch: RouterScratch,
    workers: int,
    seeds: dict[str, dict[int, list[int]]] | None = None,
) -> None:
    """Initial routing pass in bit-identical parallel wavefronts.

    Consecutive nets whose prune masks are provably disjoint (box
    separation over the widest node extent) form a *wave*: their
    searches run in parallel threads against the frozen congestion
    state, then their usage is applied in net order.  A wave net reads
    effective costs only inside its own mask and adds usage only on
    its own route, so disjoint masks make every wave search equal,
    node for node, to the sequential one.  Wave searches never take
    the full-graph retry (it reads beyond the mask): a net that needs
    it aborts the wave from that net on, re-running sequentially with
    standard semantics.

    Usage is committed in *batches*: routed waves and runs of adopted
    (reused) routes accumulate their node sets and flush through one
    vectorised :meth:`_FlatCongestion.add_batch` scatter-add right
    before the next search needs to see them.  Effective costs are
    re-folded from final usage, never accumulated, and nothing reads
    the state between the per-net adds a batch replaces, so the
    batched commit is bit-identical to per-net commits — only the
    ``routes`` insertion order (which the rip-up loop iterates) must
    be, and is, maintained per net.
    """
    span = max(2, max(c.node_length))  # widest node extent, in tiles
    pool: ThreadPoolExecutor | None = None
    wave: list[tuple[str, int, list[int], bytes | None]] = []
    boxes: list[tuple[int, int, int, int]] = []
    pending: list[set[int]] = []  # usage awaiting one batched commit

    def route_one(entry) -> RoutedNet | None:
        name, source, sinks, mask = entry
        with SCRATCH_POOL.lease(c.n_nodes) as sc:
            return _route_net_flat(
                c, state, name, source, sinks, sc, mask, base_mask,
                edge_ok, retry=False,
            )

    def commit_usage() -> None:
        """Make every pending net's usage visible (before any search)."""
        if pending:
            state.add_batch(pending)
            pending.clear()

    def commit(name: str, net: RoutedNet) -> None:
        routes[name] = net
        pending.append(net.nodes)

    def flush() -> None:
        nonlocal pool
        if not wave:
            return
        commit_usage()  # wave searches must see all earlier nets
        if len(wave) == 1:
            name, source, sinks, mask = wave[0]
            commit(name, _route_net_flat(
                c, state, name, source, sinks, scratch, mask, base_mask,
                edge_ok,
            ))
        else:
            if pool is None:
                pool = ThreadPoolExecutor(max_workers=workers)
            results = list(pool.map(route_one, wave))
            redo_from = len(wave)
            for i, (entry, net) in enumerate(zip(wave, results)):
                if net is None:
                    # this net needs the full-graph retry, which reads
                    # beyond its mask: it and everything after it re-run
                    # sequentially against the committed state
                    redo_from = i
                    break
                commit(entry[0], net)
            if redo_from < len(wave):
                commit_usage()  # sequential redo searches read state
                for name, source, sinks, mask in wave[redo_from:]:
                    net = _route_net_flat(
                        c, state, name, source, sinks, scratch, mask,
                        base_mask, edge_ok,
                    )
                    routes[name] = net
                    state.add(net.nodes)
        wave.clear()
        boxes.clear()

    try:
        for name, source, sinks in endpoints:
            sig = endpoint_signature(source, sinks)
            prior = reuse.get(sig) if reuse else None
            if prior is not None:
                # a reused route can sit anywhere on the fabric: drain
                # the wave *before* adopting, so the wave's searches
                # never see this later net's usage; the adopted route
                # aliases the prior net's sets (routes are only ever
                # replaced wholesale, never mutated in place)
                flush()
                net = RoutedNet(name, source, list(sinks))
                net.nodes = prior.nodes
                net.edges = prior.edges
                net.sink_paths = prior.sink_paths
                net.reused = True
                commit(name, net)
                continue
            seed_paths = seeds.get(sig) if seeds else None
            if seed_paths:
                # salvaged branches can reach beyond the net's terminal
                # box (full-graph-retry golden paths), which would void
                # the wave-disjointness proof: route it sequentially,
                # in order, against fully committed state — exactly
                # what the sequential initial pass does
                flush()
                commit_usage()
                commit(name, _route_net_flat(
                    c, state, name, source, sinks, scratch,
                    mask_for(name, source, sinks), base_mask, edge_ok,
                    seed_paths=seed_paths,
                ))
                continue
            box = _net_bbox(c, source, sinks)
            mask = mask_for(name, source, sinks)
            independent = (
                mask is not None
                and not _bbox_covers_fabric(c, box)
                and all(not _boxes_interact(box, b, span) for b in boxes)
            )
            if not independent:
                flush()
            wave.append((name, source, sinks, mask))
            boxes.append(box)
        flush()
        commit_usage()  # the rip-up loop reads the final state
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


def route_context_compiled(
    c: CompiledRRG,
    netlist: Netlist,
    placement: Placement,
    context: int = 0,
    reuse: dict[str, RoutedNet] | None = None,
    max_iterations: int = MAX_ITERATIONS,
    scratch: RouterScratch | None = None,
    defects: "DefectMap | None" = None,
    workers: int | None = None,
    warm: bool = False,
    salvage: dict[str, RoutedNet] | None = None,
) -> RouteResult:
    """Route one context's placed netlist over the compiled RRG.

    Mirrors :func:`route_context_legacy` decision-for-decision (same net
    order, same congestion schedule, same rip-up criterion), but runs
    Dijkstra over CSR arrays with epoch-stamped scratch buffers and
    per-net bounding boxes (see the module docstring for the one case
    where pruning may pick a different route than the legacy engine).

    ``scratch`` buffers are leased from :data:`SCRATCH_POOL` when not
    supplied, so repeated calls (batch jobs, sweep points) reuse one
    allocation per worker instead of reallocating per call.

    ``defects`` (a :class:`~repro.reliability.defect_map.DefectMap`)
    excludes dead wires/switches from every search and prices them
    unroutable in the congestion state.  A clean map is normalised to
    ``None``, so the defect-free path — and its routes — is untouched.

    ``workers > 1`` routes the *initial* pass in wavefronts: runs of
    consecutive nets whose prune masks are provably disjoint search in
    parallel threads against the frozen congestion state, and their
    usage is applied in net order afterwards — a net only ever reads
    costs inside its own mask and only ever writes usage on its own
    route, so disjoint masks make the parallel searches equal to the
    sequential ones node-for-node.  Any wave net that needs the
    full-graph retry aborts the wave from that net on and re-runs
    sequentially.  Routes are bit-identical to ``workers=None`` by
    construction (pinned by the route-workers equivalence tests).

    ``warm`` changes the initial-pass *order* (only meaningful with
    ``reuse``): every bank hit is adopted before the first fresh net
    routes, so fresh nets search against the complete congestion
    picture of the adopted routes instead of colliding with
    not-yet-seen ones and negotiating the conflicts away over rip-up
    iterations.  It also escalates the starting pressure factor (see
    :data:`WARM_PRES_FAC`) so fresh nets steer around adopted usage in
    their first search.  ``salvage`` maps endpoint signatures of nets
    *not* in the bank to their prior (golden) routes: the healthy sink
    branches of a salvaged net are adopted verbatim and only the broken
    sinks are re-searched.  See :func:`route_context_warm`.
    """
    pooled = scratch is None or scratch.n != c.n_nodes
    if pooled:
        scratch = SCRATCH_POOL.acquire(c.n_nodes)
    try:
        return _route_context_compiled(
            c, netlist, placement, context, reuse, max_iterations, scratch,
            defects, workers, warm, salvage,
        )
    finally:
        if pooled:
            SCRATCH_POOL.release(scratch)


def route_context_warm(
    c: CompiledRRG,
    netlist: Netlist,
    placement: Placement,
    golden: RouteResult,
    dirty: set[str],
    context: int = 0,
    max_iterations: int = MAX_ITERATIONS,
    scratch: RouterScratch | None = None,
    defects: "DefectMap | None" = None,
    workers: int | None = None,
    signatures: dict[str, str] | None = None,
) -> RouteResult:
    """Delta-reroute: warm-start from a golden routing, re-routing only
    the ``dirty`` nets.

    Seeds PathFinder with the golden congestion state: every non-dirty
    golden route is adopted *before the first fresh search* — adopted
    routes alias the golden net's sets and commit their usage in
    vectorised batches — so each dirty net's Dijkstra already sees the
    full picture of healthy routes and steers around them immediately,
    instead of colliding with not-yet-routed ones and negotiating the
    conflicts away over rip-up iterations.  Adopted routes still
    participate in congestion resolution: one that conflicts with a
    rerouted dirty net is ripped up like any other (losing its reuse
    mark).  Dirty nets themselves are *salvaged* per sink: branches of
    the golden route untouched by the defect map are adopted verbatim,
    and only the broken sinks are re-searched (from the salvaged tree).
    The result is a valid conflict-free routing, deterministic
    per input, and bit-identical across the sequential and wavefront
    (``workers``) paths — but the routes may legitimately differ from
    a cold :func:`route_context_compiled` call with the same bank,
    which discovers the bank hits in netlist order.  ``signatures``
    optionally supplies precomputed ``endpoint_signature`` strings per
    golden net name (the repair ladder caches them on the golden
    mapping).
    """
    bank: dict[str, RoutedNet] = {}
    salvage: dict[str, RoutedNet] = {}
    nets = golden.nets
    if signatures is None:
        for name, net in nets.items():
            sig = endpoint_signature(net.source, net.sinks)
            (salvage if name in dirty else bank)[sig] = net
    else:
        for name, net in nets.items():
            (salvage if name in dirty else bank)[signatures[name]] = net
    return route_context_compiled(
        c, netlist, placement, context=context, reuse=bank,
        max_iterations=max_iterations, scratch=scratch, defects=defects,
        workers=workers, warm=True, salvage=salvage or None,
    )


def _route_context_compiled(
    c: CompiledRRG,
    netlist: Netlist,
    placement: Placement,
    context: int,
    reuse: dict[str, RoutedNet] | None,
    max_iterations: int,
    scratch: RouterScratch,
    defects: "DefectMap | None" = None,
    workers: int | None = None,
    warm: bool = False,
    salvage: dict[str, RoutedNet] | None = None,
) -> RouteResult:
    if defects is not None and defects.is_clean:
        defects = None  # all-healthy map: take the defect-free path verbatim
    endpoints = _net_endpoints(netlist, placement, c)
    # delta-reroute salvage: the healthy branches of each dirty net's
    # golden route are adopted verbatim, so only broken sinks are
    # searched (and from the salvaged tree, not the bare source)
    seeds: dict[str, dict[int, list[int]]] = {}
    if salvage and defects is not None:
        for sig, prior in salvage.items():
            kept = _healthy_sink_paths(prior, defects)
            if kept:
                seeds[sig] = kept
            _tcount("router.warm.salvaged_sinks", len(kept))
            _tcount("router.warm.researched_sinks",
                    len(prior.sink_paths) - len(kept))
    if warm and reuse:
        # delta-reroute order: adopt every bank hit before the first
        # fresh search, so fresh (dirty) nets route against the full
        # golden congestion state and steer around healthy routes
        # immediately instead of discovering the collisions one rip-up
        # iteration at a time
        hits: list = []
        misses: list = []
        for e in endpoints:
            (hits if endpoint_signature(e[1], e[2]) in reuse
             else misses).append(e)
        endpoints = hits + misses
        _tcount("router.warm.adopted_nets", len(hits))
        _tcount("router.warm.fresh_nets", len(misses))
    state = _FlatCongestion(c, defects)
    if warm and reuse:
        # delta-reroute pricing: fresh nets see adopted usage at full
        # price immediately (see WARM_PRES_FAC).  Safe to set before any
        # usage commits — pres_fac only enters the folded cost of
        # pressured nodes, and the only born-pressured nodes (defects)
        # carry an infinite history term that dominates regardless.
        state.pres_fac = WARM_PRES_FAC
    base_mask = defects.node_ok_bytes if defects is not None else None
    edge_ok = defects.edge_ok_bytes if defects is not None else None
    routes: dict[str, RoutedNet] = {}
    # prune masks are built lazily: a reused net only needs one if it is
    # ripped up later, and mask construction is O(n_nodes) per net
    masks: dict[str, bytes | None] = {}

    def mask_for(name: str, source: int, sinks: list[int]) -> bytes | None:
        if name not in masks:
            m = _net_mask(c, source, sinks)
            if base_mask is not None:
                # fold the defect floor into the per-net prune mask; with
                # no bounding box the combined mask IS the floor, so the
                # full-graph retry (``mask is not base_mask``) stays off
                m = base_mask if m is None else (
                    np.frombuffer(m, dtype=np.uint8)
                    & np.frombuffer(base_mask, dtype=np.uint8)
                ).tobytes()
            masks[name] = m
        return masks[name]

    if workers is not None and workers > 1 and len(endpoints) > 1:
        _route_initial_waves(
            c, state, endpoints, reuse, routes, mask_for, base_mask,
            edge_ok, scratch, workers, seeds or None,
        )
    else:
        # runs of consecutive adopted (reused) routes commit their
        # usage in one vectorised batch, flushed right before the next
        # fresh net's search needs to see it; adopted nets alias the
        # prior route's sets (routes are only ever replaced wholesale,
        # never mutated in place).  Both are bit-identical to the
        # per-net copy/commit they replace — and are what makes a
        # warm-started repair route (mostly adopted nets) cheap.
        pending: list[set[int]] = []
        for name, source, sinks in endpoints:
            sig = endpoint_signature(source, sinks)
            prior = reuse.get(sig) if reuse else None
            if prior is not None:
                net = RoutedNet(name, source, list(sinks))
                net.nodes = prior.nodes
                net.edges = prior.edges
                net.sink_paths = prior.sink_paths
                net.reused = True
                routes[name] = net
                pending.append(net.nodes)
                continue
            if pending:
                state.add_batch(pending)
                pending.clear()
            net = _route_net_flat(
                c, state, name, source, sinks, scratch,
                mask_for(name, source, sinks), base_mask, edge_ok,
                seed_paths=seeds.get(sig) if seeds else None,
            )
            routes[name] = net
            state.add(net.nodes)
        if pending:
            state.add_batch(pending)
            pending.clear()

    overused_ids = state.overused_ids
    iteration = 1
    ripped = 0
    while iteration < max_iterations:
        if not overused_ids:
            break
        _tcount("router.overused_census", len(overused_ids))
        _tcount("router.ripup_iterations")
        state.next_iteration()
        # rip up and reroute congested nets only; ``overused_ids`` is
        # live-updated by add/remove, so the test sees reroutes made
        # earlier in this same sweep over the nets (legacy semantics)
        for name, net in routes.items():
            if overused_ids.isdisjoint(net.nodes):
                continue
            state.remove(net.nodes)
            fresh = _route_net_flat(
                c, state, name, net.source, net.sinks, scratch,
                mask_for(name, net.source, net.sinks), base_mask, edge_ok,
            )
            routes[name] = fresh
            state.add(fresh.nodes)
            ripped += 1
        iteration += 1
    else:
        raise RoutingError(
            f"context {context}: congestion unresolved after {max_iterations} "
            f"iterations ({state.overused()} overused nodes)"
        )
    _tcount("router.contexts_routed")
    _tcount("router.ripped_nets", ripped)
    return RouteResult(routes, iteration, context)


def route_program_compiled(
    c: CompiledRRG,
    program: MultiContextProgram,
    placements: list[Placement],
    share_aware: bool = True,
    workers: int | None = None,
    defects: "DefectMap | None" = None,
) -> list[RouteResult]:
    """Route all contexts over the compiled RRG.

    With ``share_aware`` the contexts are routed in order so each can
    adopt earlier contexts' routes (the reuse bank is a sequential
    dependency).  Without it every context is an independent problem
    and ``workers > 1`` routes them in parallel, one scratch buffer per
    job, sharing the read-only compiled substrate.  ``defects`` applies
    one defect map to every context (manufacturing defects are a
    property of the die, not of a configuration).
    """
    if len(placements) != program.n_contexts:
        raise RoutingError("one placement per context required")
    jobs = list(enumerate(zip(program.contexts, placements)))
    if not share_aware and workers and workers > 1 and len(jobs) > 1:
        def _one(job: tuple[int, tuple[Netlist, Placement]]) -> RouteResult:
            ci, (netlist, placement) = job
            return route_context_compiled(
                c, netlist, placement, context=ci, defects=defects
            )

        with ThreadPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            return list(pool.map(_one, jobs))

    results: list[RouteResult] = []
    bank: dict[str, RoutedNet] = {}
    with SCRATCH_POOL.lease(c.n_nodes) as scratch:
        for ci, (netlist, placement) in jobs:
            res = route_context_compiled(
                c, netlist, placement, context=ci,
                reuse=bank if share_aware else None, scratch=scratch,
                defects=defects,
            )
            results.append(res)
            if share_aware:
                for net in res.nets.values():
                    bank.setdefault(
                        endpoint_signature(net.source, net.sinks), net
                    )
    return results


# ========================================================================= #
# legacy object-graph engine (reference implementation)
# ========================================================================= #
class _CongestionState:
    """Per-context PathFinder bookkeeping (legacy object-graph router)."""

    def __init__(self, n_nodes: int) -> None:
        self.usage = [0] * n_nodes
        self.history = [0.0] * n_nodes
        self.pres_fac = PRES_FAC_FIRST

    def node_cost(self, g: RoutingResourceGraph, nid: int) -> float:
        node = g.nodes[nid]
        base = 1.0 + LENGTH_COST_FACTOR * (node.length - 1)
        over = max(0, self.usage[nid] + 1 - node.capacity)
        return base * (1.0 + self.pres_fac * over) + self.history[nid]

    def add(self, nodes: set[int]) -> None:
        for n in nodes:
            self.usage[n] += 1

    def remove(self, nodes: set[int]) -> None:
        for n in nodes:
            self.usage[n] -= 1

    def overused(self, g: RoutingResourceGraph) -> int:
        return sum(
            1 for nid, u in enumerate(self.usage) if u > g.nodes[nid].capacity
        )

    def bump_history(self, g: RoutingResourceGraph) -> None:
        for nid, u in enumerate(self.usage):
            if u > g.nodes[nid].capacity:
                self.history[nid] += HIST_FAC * (u - g.nodes[nid].capacity)


def _dijkstra_to_sink(
    g: RoutingResourceGraph,
    state: _CongestionState,
    tree_nodes: set[int],
    target: int,
) -> list[int]:
    """Shortest path from the current route tree to ``target``."""
    dist: dict[int, float] = {}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = []
    for n in tree_nodes:
        dist[n] = 0.0
        heapq.heappush(heap, (0.0, n))
    while heap:
        d, nid = heapq.heappop(heap)
        if d > dist.get(nid, float("inf")):
            continue
        if nid == target:
            path = [nid]
            while path[-1] not in tree_nodes:
                path.append(prev[path[-1]])
            path.reverse()
            return path
        for nxt, _kind in g.out_edges[nid]:
            if g.nodes[nxt].kind is NodeKind.SINK and nxt != target:
                continue
            nd = d + state.node_cost(g, nxt)
            if nd < dist.get(nxt, float("inf")):
                dist[nxt] = nd
                prev[nxt] = nid
                heapq.heappush(heap, (nd, nxt))
    raise RoutingError(f"no path to sink node {target} ({g.nodes[target].name})")


def _route_net(
    g: RoutingResourceGraph,
    state: _CongestionState,
    name: str,
    source: int,
    sinks: list[int],
) -> RoutedNet:
    net = RoutedNet(name, source, list(sinks))
    net.nodes = {source}
    for sink in sinks:
        path = _dijkstra_to_sink(g, state, net.nodes, sink)
        # record full root->sink path for timing: splice at the join point
        net.sink_paths[sink] = list(path)
        for a, b in zip(path, path[1:]):
            net.edges.add((a, b))
        net.nodes.update(path)
    return net


def route_context_legacy(
    g: RoutingResourceGraph,
    netlist: Netlist,
    placement: Placement,
    context: int = 0,
    reuse: dict[str, RoutedNet] | None = None,
    max_iterations: int = MAX_ITERATIONS,
) -> RouteResult:
    """Route one context with the original dict/set PathFinder.

    Kept as the reference implementation: the equivalence tests assert
    the compiled engine reproduces its routes, and the scaling bench
    measures the speedup against it.
    """
    endpoints = _net_endpoints(netlist, placement, g)
    state = _CongestionState(g.n_nodes)
    routes: dict[str, RoutedNet] = {}

    # initial routing (reuse first, then fresh)
    for name, source, sinks in endpoints:
        sig = endpoint_signature(source, sinks)
        prior = reuse.get(sig) if reuse else None
        if prior is not None:
            net = RoutedNet(name, source, list(sinks))
            net.nodes = set(prior.nodes)
            net.edges = set(prior.edges)
            net.sink_paths = {k: list(v) for k, v in prior.sink_paths.items()}
            net.reused = True
            routes[name] = net
            state.add(net.nodes)
        else:
            net = _route_net(g, state, name, source, sinks)
            routes[name] = net
            state.add(net.nodes)

    iteration = 1
    while iteration < max_iterations:
        over = state.overused(g)
        if over == 0:
            break
        state.bump_history(g)
        state.pres_fac *= PRES_FAC_MULT
        # rip up and reroute congested nets only
        for name, net in routes.items():
            if all(state.usage[n] <= g.nodes[n].capacity for n in net.nodes):
                continue
            state.remove(net.nodes)
            fresh = _route_net(g, state, name, net.source, net.sinks)
            routes[name] = fresh
            state.add(fresh.nodes)
        iteration += 1
    else:
        raise RoutingError(
            f"context {context}: congestion unresolved after {max_iterations} "
            f"iterations ({state.overused(g)} overused nodes)"
        )
    return RouteResult(routes, iteration, context)


def route_program_legacy(
    g: RoutingResourceGraph,
    program: MultiContextProgram,
    placements: list[Placement],
    share_aware: bool = True,
) -> list[RouteResult]:
    """Route all contexts with the legacy object-graph router."""
    if len(placements) != program.n_contexts:
        raise RoutingError("one placement per context required")
    results: list[RouteResult] = []
    bank: dict[str, RoutedNet] = {}
    for ci, (netlist, placement) in enumerate(zip(program.contexts, placements)):
        res = route_context_legacy(
            g, netlist, placement, context=ci, reuse=bank if share_aware else None
        )
        results.append(res)
        if share_aware:
            for net in res.nets.values():
                bank.setdefault(endpoint_signature(net.source, net.sinks), net)
    return results


# ========================================================================= #
# public adapters
# ========================================================================= #
def _as_compiled(g: RoutingResourceGraph | CompiledRRG) -> CompiledRRG:
    return g if isinstance(g, CompiledRRG) else compile_rrg(g)


def route_context(
    g: RoutingResourceGraph | CompiledRRG,
    netlist: Netlist,
    placement: Placement,
    context: int = 0,
    reuse: dict[str, RoutedNet] | None = None,
    max_iterations: int = MAX_ITERATIONS,
    defects: "DefectMap | None" = None,
    workers: int | None = None,
) -> RouteResult:
    """Route one context's placed netlist to congestion-freedom.

    ``reuse`` maps *endpoint signatures* (see :func:`endpoint_signature`)
    to routes from earlier contexts; matching nets adopt the previous
    route up front (they still participate in congestion resolution —
    a reused route that conflicts within this context gets ripped up,
    losing its reuse mark).  ``defects`` excludes a defect map's dead
    resources from every search.  ``workers > 1`` routes the initial
    pass in bit-identical wavefronts of mask-disjoint nets.

    Accepts either graph representation; object graphs are lowered to a
    :class:`CompiledRRG` on first use (cached on the graph instance).
    """
    return route_context_compiled(
        _as_compiled(g), netlist, placement, context=context,
        reuse=reuse, max_iterations=max_iterations, defects=defects,
        workers=workers,
    )


def route_program(
    g: RoutingResourceGraph | CompiledRRG,
    program: MultiContextProgram,
    placements: list[Placement],
    share_aware: bool = True,
    workers: int | None = None,
    defects: "DefectMap | None" = None,
) -> list[RouteResult]:
    """Route all contexts; with ``share_aware`` routes are reused across
    contexts whenever endpoints coincide (the proposed mapping flow).
    ``workers`` parallelises share-unaware (independent) contexts;
    ``defects`` applies one die's defect map to every context."""
    return route_program_compiled(
        _as_compiled(g), program, placements,
        share_aware=share_aware, workers=workers, defects=defects,
    )


def endpoint_signature(source: int, sinks: list[int]) -> str:
    """Canonical key identifying a net by its physical endpoints."""
    return f"{source}->{','.join(map(str, sorted(sinks)))}"
