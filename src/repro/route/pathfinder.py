"""PathFinder negotiated-congestion routing on the RRG.

Classic iterative rip-up-and-reroute: every net is routed by Dijkstra
over the routing-resource graph; node costs grow with present overuse
and accumulated (history) congestion until the solution is overlap-free.
Multi-sink nets route as Steiner-ish trees by re-running Dijkstra from
the partial tree to the nearest remaining sink.

Multi-context specifics: each context is an independent routing problem
on the same RRG, but the *proposed* flow reuses routes for nets that are
identical across contexts (same source and sink nodes) — reused routes
make the corresponding switch patterns CONSTANT, which is what the RCM
rewards (paper Section 3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.rrg import EdgeKind, NodeKind, RoutingResourceGraph
from repro.errors import RoutingError
from repro.netlist.dfg import MultiContextProgram
from repro.netlist.netlist import CellKind, Netlist
from repro.place.placer import Placement

#: PathFinder schedule parameters.
MAX_ITERATIONS = 40
PRES_FAC_FIRST = 0.6
PRES_FAC_MULT = 1.6
HIST_FAC = 0.35


@dataclass
class RoutedNet:
    """One routed net: the branch to each sink plus the full node set."""

    name: str
    source: int
    sinks: list[int]
    nodes: set[int] = field(default_factory=set)
    edges: set[tuple[int, int]] = field(default_factory=set)
    sink_paths: dict[int, list[int]] = field(default_factory=dict)
    reused: bool = False


@dataclass
class RouteResult:
    """Routing of one context."""

    nets: dict[str, RoutedNet]
    iterations: int
    context: int = 0

    def used_edges(self) -> set[tuple[int, int]]:
        out: set[tuple[int, int]] = set()
        for net in self.nets.values():
            out |= net.edges
        return out

    def wirelength(self, g: RoutingResourceGraph) -> int:
        total = 0
        for net in self.nets.values():
            for nid in net.nodes:
                if g.nodes[nid].kind in (NodeKind.CHANX, NodeKind.CHANY):
                    total += g.nodes[nid].length
        return total


def _net_endpoints(
    netlist: Netlist, placement: Placement, g: RoutingResourceGraph
) -> list[tuple[str, int, list[int]]]:
    """Extract (net name, source node, sink nodes) for every routable net."""
    out: list[tuple[str, int, list[int]]] = []
    for net_name, driver_name in netlist.net_driver.items():
        driver = netlist.cells[driver_name]
        sinks: list[int] = []
        for cell in netlist.cells.values():
            for slot, in_net in enumerate(cell.inputs):
                if in_net != net_name:
                    continue
                if cell.kind in (CellKind.LUT, CellKind.DFF):
                    loc = placement.location(cell.name)
                    sinks.append(g.lb_sink[(loc.x, loc.y, slot if cell.kind is CellKind.LUT else 0)])
                elif cell.kind is CellKind.OUTPUT:
                    coord, pad = placement.ios[cell.name]
                    sinks.append(g.io_sink[(coord.x, coord.y, pad)])
        if not sinks:
            continue
        if driver.kind is CellKind.INPUT:
            coord, pad = placement.ios[driver.name]
            source = g.io_source[(coord.x, coord.y, pad)]
        elif driver.kind in (CellKind.LUT, CellKind.DFF):
            loc = placement.location(driver.name)
            source = g.lb_source[(loc.x, loc.y, 0)]
        else:
            continue
        out.append((net_name, source, sorted(set(sinks))))
    return out


class _CongestionState:
    """Per-context PathFinder bookkeeping."""

    def __init__(self, n_nodes: int) -> None:
        self.usage = [0] * n_nodes
        self.history = [0.0] * n_nodes
        self.pres_fac = PRES_FAC_FIRST

    def node_cost(self, g: RoutingResourceGraph, nid: int) -> float:
        node = g.nodes[nid]
        base = 1.0 + 0.2 * (node.length - 1)
        over = max(0, self.usage[nid] + 1 - node.capacity)
        return base * (1.0 + self.pres_fac * over) + self.history[nid]

    def add(self, nodes: set[int]) -> None:
        for n in nodes:
            self.usage[n] += 1

    def remove(self, nodes: set[int]) -> None:
        for n in nodes:
            self.usage[n] -= 1

    def overused(self, g: RoutingResourceGraph) -> int:
        return sum(
            1 for nid, u in enumerate(self.usage) if u > g.nodes[nid].capacity
        )

    def bump_history(self, g: RoutingResourceGraph) -> None:
        for nid, u in enumerate(self.usage):
            if u > g.nodes[nid].capacity:
                self.history[nid] += HIST_FAC * (u - g.nodes[nid].capacity)


def _dijkstra_to_sink(
    g: RoutingResourceGraph,
    state: _CongestionState,
    tree_nodes: set[int],
    target: int,
) -> list[int]:
    """Shortest path from the current route tree to ``target``."""
    dist: dict[int, float] = {}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = []
    for n in tree_nodes:
        dist[n] = 0.0
        heapq.heappush(heap, (0.0, n))
    while heap:
        d, nid = heapq.heappop(heap)
        if d > dist.get(nid, float("inf")):
            continue
        if nid == target:
            path = [nid]
            while path[-1] not in tree_nodes:
                path.append(prev[path[-1]])
            path.reverse()
            return path
        for nxt, _kind in g.out_edges[nid]:
            if g.nodes[nxt].kind is NodeKind.SINK and nxt != target:
                continue
            nd = d + state.node_cost(g, nxt)
            if nd < dist.get(nxt, float("inf")):
                dist[nxt] = nd
                prev[nxt] = nid
                heapq.heappush(heap, (nd, nxt))
    raise RoutingError(f"no path to sink node {target} ({g.nodes[target].name})")


def _route_net(
    g: RoutingResourceGraph,
    state: _CongestionState,
    name: str,
    source: int,
    sinks: list[int],
) -> RoutedNet:
    net = RoutedNet(name, source, list(sinks))
    net.nodes = {source}
    for sink in sinks:
        path = _dijkstra_to_sink(g, state, net.nodes, sink)
        # record full root->sink path for timing: splice at the join point
        join = path[0]
        net.sink_paths[sink] = list(path)
        for a, b in zip(path, path[1:]):
            net.edges.add((a, b))
        net.nodes.update(path)
    return net


def route_context(
    g: RoutingResourceGraph,
    netlist: Netlist,
    placement: Placement,
    context: int = 0,
    reuse: dict[str, RoutedNet] | None = None,
    max_iterations: int = MAX_ITERATIONS,
) -> RouteResult:
    """Route one context's placed netlist to congestion-freedom.

    ``reuse`` maps *endpoint signatures* (see :func:`endpoint_signature`)
    to routes from earlier contexts; matching nets adopt the previous
    route up front (they still participate in congestion resolution —
    a reused route that conflicts within this context gets ripped up,
    losing its reuse mark).
    """
    endpoints = _net_endpoints(netlist, placement, g)
    state = _CongestionState(g.n_nodes)
    routes: dict[str, RoutedNet] = {}
    reuse_sig: dict[str, str] = {}

    # initial routing (reuse first, then fresh)
    for name, source, sinks in endpoints:
        sig = endpoint_signature(source, sinks)
        prior = reuse.get(sig) if reuse else None
        if prior is not None:
            net = RoutedNet(name, source, list(sinks))
            net.nodes = set(prior.nodes)
            net.edges = set(prior.edges)
            net.sink_paths = {k: list(v) for k, v in prior.sink_paths.items()}
            net.reused = True
            routes[name] = net
            state.add(net.nodes)
        else:
            net = _route_net(g, state, name, source, sinks)
            routes[name] = net
            state.add(net.nodes)
        reuse_sig[name] = sig

    iteration = 1
    while iteration < max_iterations:
        over = state.overused(g)
        if over == 0:
            break
        state.bump_history(g)
        state.pres_fac *= PRES_FAC_MULT
        # rip up and reroute congested nets only
        for name, net in routes.items():
            if all(state.usage[n] <= g.nodes[n].capacity for n in net.nodes):
                continue
            state.remove(net.nodes)
            fresh = _route_net(g, state, name, net.source, net.sinks)
            routes[name] = fresh
            state.add(fresh.nodes)
        iteration += 1
    else:
        raise RoutingError(
            f"context {context}: congestion unresolved after {max_iterations} "
            f"iterations ({state.overused(g)} overused nodes)"
        )
    return RouteResult(routes, iteration, context)


def endpoint_signature(source: int, sinks: list[int]) -> str:
    """Canonical key identifying a net by its physical endpoints."""
    return f"{source}->{','.join(map(str, sorted(sinks)))}"


def route_program(
    g: RoutingResourceGraph,
    program: MultiContextProgram,
    placements: list[Placement],
    share_aware: bool = True,
) -> list[RouteResult]:
    """Route all contexts; with ``share_aware`` routes are reused across
    contexts whenever endpoints coincide (the proposed mapping flow)."""
    if len(placements) != program.n_contexts:
        raise RoutingError("one placement per context required")
    results: list[RouteResult] = []
    bank: dict[str, RoutedNet] = {}
    for c, (netlist, placement) in enumerate(zip(program.contexts, placements)):
        res = route_context(
            g, netlist, placement, context=c, reuse=bank if share_aware else None
        )
        results.append(res)
        if share_aware:
            for net in res.nets.values():
                bank.setdefault(endpoint_signature(net.source, net.sinks), net)
    return results
