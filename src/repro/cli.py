"""Command-line interface.

Exposes the library's main flows without writing Python::

    python -m repro patterns                 # Figs. 3-5 classification
    python -m repro decoder 1000 0110       # synthesize & verify decoders
    python -m repro area --change-rate 0.05 # Section-5 evaluation
    python -m repro map --workload adder    # full flow on a workload
    python -m repro batch --workloads adder,crc --workers 2  # engine batch
    python -m repro reorder --workload adder  # context-ID optimization
    python -m repro sweep --what change-rate  # sensitivity curves
    python -m repro sweep --what channel-width --workload crc \
        --backend process                     # routing design-space sweep
    python -m repro yield --defect-rate 0.01,0.03 --trials 16 \
        --backend process                     # Monte Carlo yield campaign

``map``, ``area``, ``batch``, ``sweep`` and ``yield`` accept ``--json``
to emit their stats as machine-readable JSON (for benchmark harnesses
and external tooling) instead of rendered tables.  Routing sweeps
(``channel-width`` / ``double-fraction`` / ``fc``) run on the compiled
sweep subsystem (:mod:`repro.analysis.sweep`) and accept ``--backend
process`` to fan points out across cores; ``yield`` runs the
reliability subsystem's Monte Carlo campaigns (:mod:`repro.reliability`)
with the same backend semantics.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

_WORKLOADS = ["adder", "random", "crc", "parity", "cmp"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Architecture of a Multi-Context FPGA Using "
            "Reconfigurable Context Memory' (IPDPS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("patterns", help="Figs. 3-5: pattern classification")
    p.add_argument("--contexts", type=int, default=4)

    p = sub.add_parser("decoder", help="Fig. 9: synthesize pattern decoders")
    p.add_argument("patterns", nargs="+",
                   help="patterns in paper (C{n-1}..C0) bit order, e.g. 1000")

    p = sub.add_parser("area", help="Section 5: area evaluation")
    p.add_argument("--change-rate", type=float, default=0.05)
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--sharing", type=float, default=2.0)
    p.add_argument("--constants", choices=["paper", "textbook"], default="paper")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser("map", help="full flow: map a workload, print stats")
    p.add_argument("--workload", default="adder", choices=_WORKLOADS)
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--mutation", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--naive", action="store_true",
                   help="disable redundancy-aware mapping")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser(
        "batch", help="map several workloads through the shared engine"
    )
    p.add_argument("--workloads", default="adder,crc",
                   help=f"comma-separated subset of {','.join(_WORKLOADS)}")
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--mutation", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="mapping jobs run concurrently (1 = sequential)")
    p.add_argument("--naive", action="store_true",
                   help="disable redundancy-aware mapping")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser("reorder", help="optimize the context-ID assignment")
    p.add_argument("--workload", default="adder", choices=_WORKLOADS)
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--mutation", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("sweep", help="design-space and sensitivity sweeps")
    p.add_argument("--what",
                   choices=["change-rate", "contexts", "channel-width",
                            "double-fraction", "fc"],
                   default="change-rate")
    p.add_argument("--workload", default="adder", choices=_WORKLOADS,
                   help="circuit for routing sweeps (ignored by the "
                        "analytic change-rate/contexts sweeps)")
    p.add_argument("--grid", type=int, default=6,
                   help="fabric side length for routing sweeps")
    p.add_argument("--values", default=None,
                   help="comma-separated sweep values (defaults per axis)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--effort", type=float, default=0.3,
                   help="placement effort for routing sweeps")
    p.add_argument("--backend",
                   choices=["sequential", "thread", "process"],
                   default="sequential",
                   help="how routing sweep points are executed")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size for thread/process backends "
                        "(default: all cores)")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser(
        "yield",
        help="Monte Carlo manufacturing-yield campaign over fabric defects",
    )
    p.add_argument("--workload", default="adder", choices=_WORKLOADS)
    p.add_argument("--grid", type=int, default=6,
                   help="fabric side length")
    p.add_argument("--width", type=int, default=8,
                   help="base channel width")
    p.add_argument("--defect-rate", default="0.0,0.01,0.03",
                   help="comma-separated per-resource defect rates")
    p.add_argument("--trials", type=int, default=8,
                   help="Monte Carlo dies sampled per campaign point")
    p.add_argument("--model", choices=["uniform", "clustered"],
                   default="uniform",
                   help="spatial defect model")
    p.add_argument("--spare", default=None,
                   help="comma-separated spare channel widths: sweeps "
                        "yield vs spares at the first defect rate "
                        "instead of sweeping rates")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--effort", type=float, default=0.3,
                   help="placement effort (golden mapping and re-place "
                        "repair)")
    p.add_argument("--backend",
                   choices=["sequential", "thread", "process"],
                   default="sequential",
                   help="how Monte Carlo trials are executed")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size for thread/process backends "
                        "(default: all cores)")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")
    return parser


def _build_circuit(name: str):
    """Tech-mapped single-context netlist for a named workload."""
    from repro.netlist.techmap import tech_map
    from repro.workloads import generators as gen

    circuits = {
        "adder": lambda: gen.ripple_adder(4),
        "random": lambda: gen.random_dag(6, 24, 4, seed=11),
        "crc": lambda: gen.crc_step(8),
        "parity": lambda: gen.parity_tree(8),
        "cmp": lambda: gen.comparator(4),
    }
    return tech_map(circuits[name](), k=4)


def _build_workload(name: str, n_contexts: int, mutation: float, seed: int):
    from repro.workloads.multicontext import mutated_program, temporal_partition

    base = _build_circuit(name)
    if name in ("crc", "parity"):
        return temporal_partition(base, n_contexts)
    return mutated_program(base, n_contexts, mutation, seed=seed)


def cmd_patterns(args: argparse.Namespace) -> int:
    from repro.analysis.pattern_stats import context_id_table, pattern_class_table

    print(context_id_table(args.contexts))
    print()
    print(pattern_class_table(args.contexts))
    return 0


def cmd_decoder(args: argparse.Namespace) -> int:
    from repro.core.decoder_synth import synthesize_single
    from repro.core.patterns import ContextPattern

    for bits in args.patterns:
        if any(b not in "01" for b in bits):
            print(f"error: pattern {bits!r} must be binary", file=sys.stderr)
            return 2
        pattern = ContextPattern.from_paper_row(tuple(int(b) for b in bits))
        block, net, n_ses = synthesize_single(pattern)
        swept = block.read_pattern(net)
        print(f"{bits}: class={pattern.classify()} SEs={n_ses} "
              f"per-context values={swept}")
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    from repro.analysis.report import area_comparison_table, breakdown_table
    from repro.core.area_model import AreaConstants, AreaModel, Technology

    constants = (
        AreaConstants.paper_calibrated()
        if args.constants == "paper"
        else AreaConstants.textbook()
    )
    model = AreaModel(constants)
    out = {
        tech.value: model.paper_operating_point(
            change_rate=args.change_rate,
            n_contexts=args.contexts,
            sharing_factor=args.sharing,
            tech=tech,
        )
        for tech in (Technology.CMOS, Technology.FEPG)
    }
    if args.json:
        print(json.dumps(_area_json(args, out), indent=2))
        return 0
    print(area_comparison_table(out))
    print()
    print(breakdown_table(out["cmos"], "Breakdown (CMOS)"))
    return 0


def _area_json(args: argparse.Namespace, out: dict) -> dict:
    return {
        "change_rate": args.change_rate,
        "contexts": args.contexts,
        "sharing_factor": args.sharing,
        "constants": args.constants,
        "technologies": {
            name: {
                "ratio": cmp.ratio,
                "proposed": {
                    "switch_area": cmp.proposed.switch_area,
                    "lut_area": cmp.proposed.lut_area,
                    "overhead_area": cmp.proposed.overhead_area,
                    "total": cmp.proposed.total,
                },
                "conventional": {
                    "switch_area": cmp.conventional.switch_area,
                    "lut_area": cmp.conventional.lut_area,
                    "overhead_area": cmp.conventional.overhead_area,
                    "total": cmp.conventional.total,
                },
            }
            for name, cmp in out.items()
        },
    }


def _map_result_json(name: str, result) -> dict:
    """JSON-ready stats for one mapped workload (shared by map/batch)."""
    mapped = result.mapped
    return {
        "workload": name,
        "grid": [mapped.params.cols, mapped.params.rows],
        "contexts": mapped.program.n_contexts,
        "luts_per_context": [len(nl.luts()) for nl in mapped.program.contexts],
        "verified": result.verified,
        "share_aware": mapped.share_aware,
        "wirelength": sum(rr.wirelength(mapped.rrg) for rr in mapped.routes),
        "route_iterations": [rr.iterations for rr in mapped.routes],
        "reuse_fraction": mapped.reuse_fraction(),
        "switch_change_rate": result.stats.switch.change_fraction(),
        "class_fractions": {
            str(k): v for k, v in result.stats.class_fractions().items()
        },
    }


def cmd_map(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import run_full_flow
    from repro.analysis.redundancy import redundancy_report

    program = _build_workload(args.workload, args.contexts, args.mutation, args.seed)
    result = run_full_flow(program, share_aware=not args.naive, seed=args.seed)
    if args.json:
        print(json.dumps(_map_result_json(args.workload, result), indent=2))
        return 0
    print(f"workload {args.workload}: "
          f"{[len(nl.luts()) for nl in program.contexts]} LUTs per context, "
          f"grid {result.mapped.params.cols}x{result.mapped.params.rows}, "
          f"verified={result.verified}")
    print()
    print(redundancy_report(result.stats).render())
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.analysis.engine import MappingEngine
    from repro.analysis.experiments import ExperimentResult, verify_mapped

    names = [w.strip() for w in args.workloads.split(",") if w.strip()]
    bad = [w for w in names if w not in _WORKLOADS]
    if bad or not names:
        print(f"error: unknown workloads {bad or args.workloads!r} "
              f"(choose from {', '.join(_WORKLOADS)})", file=sys.stderr)
        return 2
    programs = [
        _build_workload(w, args.contexts, args.mutation, args.seed)
        for w in names
    ]
    engine = MappingEngine(workers=args.workers)
    mapped = engine.map_batch(
        programs, share_aware=not args.naive, seed=args.seed,
    )
    results = [
        ExperimentResult(name, m, m.stats(), verify_mapped(m, seed=args.seed))
        for name, m in zip(names, mapped)
    ]
    if args.json:
        print(json.dumps(
            [_map_result_json(n, r) for n, r in zip(names, results)], indent=2
        ))
        return 0
    for name, r in zip(names, results):
        print(f"{name}: grid {r.mapped.params.cols}x{r.mapped.params.rows} "
              f"verified={r.verified} "
              f"reuse={r.mapped.reuse_fraction():.1%} "
              f"change-rate={r.change_rate:.1%}")
    return 0


def cmd_reorder(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import map_program
    from repro.core.reorder import optimize_context_order

    program = _build_workload(args.workload, args.contexts, args.mutation, args.seed)
    mapped = map_program(program, seed=args.seed)
    masks = list(mapped.stats().switch.used.values())
    result = optimize_context_order(masks, args.contexts)
    print(f"decoder cost before: {result.cost_before} SEs")
    print(f"decoder cost after : {result.cost_after} SEs "
          f"(saving {result.saving:.1%})")
    print(f"physical ID schedule: {result.physical_schedule()}")
    return 0


#: Default grids per sweep axis (``--values`` overrides).
_SWEEP_DEFAULTS = {
    "change-rate": [0.0, 0.01, 0.03, 0.05, 0.1, 0.2, 0.5],
    "contexts": [2, 4, 8, 16],
    "channel-width": [4, 6, 8, 10, 12],
    "double-fraction": [0.0, 0.25, 0.5, 0.75],
    "fc": [1.0, 0.5, 0.3],
}


def _sweep_values(args: argparse.Namespace) -> list[float]:
    if args.values is None:
        return list(_SWEEP_DEFAULTS[args.what])
    cast = int if args.what in ("contexts", "channel-width") else float
    return [cast(v) for v in args.values.split(",") if v.strip()]


def _analytic_sweep(args: argparse.Namespace, values: list[float]) -> int:
    from repro.analysis.report import sweep_table
    from repro.analysis.sweep import (
        sweep_change_rate_points,
        sweep_contexts_points,
    )

    if args.what == "change-rate":
        points = sweep_change_rate_points(values)
        label, title = "change rate", "Area ratio vs change rate"
    else:
        points = sweep_contexts_points([int(v) for v in values])
        label, title = "contexts", "Area ratio vs context count"
    if args.json:
        print(json.dumps({
            "sweep": args.what,
            "points": [pt.to_dict() for pt in points],
        }, indent=2))
        return 0
    rows = [(pt.value, pt.cmos_ratio, pt.fepg_ratio) for pt in points]
    print(sweep_table(rows, [label, "CMOS", "FePG"], title))
    return 0


def _routing_sweep(args: argparse.Namespace, values: list[float]) -> int:
    from repro.analysis.sweep import (
        SweepRunner,
        channel_width_jobs,
        double_fraction_jobs,
        fc_jobs,
    )
    from repro.arch.params import ArchParams
    from repro.utils.tables import TextTable

    netlist = _build_circuit(args.workload)
    base = ArchParams(
        cols=args.grid, rows=args.grid, channel_width=10, io_capacity=4
    )
    build = {
        "channel-width": channel_width_jobs,
        "double-fraction": double_fraction_jobs,
        "fc": fc_jobs,
    }[args.what]
    if args.backend == "sequential" and args.workers is not None:
        print("note: --workers has no effect with the sequential backend; "
              "pass --backend thread|process to parallelize",
              file=sys.stderr)
    jobs = build(netlist, base, values, seed=args.seed, effort=args.effort)
    runner = SweepRunner(backend=args.backend, workers=args.workers)
    points = runner.run(jobs)
    if args.json:
        print(json.dumps({
            "sweep": args.what,
            "workload": args.workload,
            "grid": [base.cols, base.rows],
            "backend": args.backend,
            "points": [pt.to_dict() for pt in points],
        }, indent=2))
        return 0
    t = TextTable(
        [args.what, "routed", "wirelength", "critical path", "iterations"],
        title=f"{args.what} sweep: {args.workload} on "
              f"{base.cols}x{base.rows}",
    )
    for pt in points:
        t.add_row([
            pt.value, pt.routed, pt.wirelength,
            f"{pt.critical_path:.1f}", pt.iterations,
        ])
    print(t.render())
    return 0


def cmd_yield(args: argparse.Namespace) -> int:
    from repro.arch.params import ArchParams
    from repro.reliability import YieldRunner
    from repro.utils.tables import TextTable

    try:
        rates = [float(v) for v in args.defect_rate.split(",") if v.strip()]
        spares = (
            [int(v) for v in args.spare.split(",") if v.strip()]
            if args.spare is not None else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not rates:
        print("error: --defect-rate needs at least one rate", file=sys.stderr)
        return 2
    netlist = _build_circuit(args.workload)
    base = ArchParams(
        cols=args.grid, rows=args.grid, channel_width=args.width,
        io_capacity=4,
    )
    runner = YieldRunner(backend=args.backend, workers=args.workers)
    if spares is not None:
        points = runner.spare_width_curve(
            netlist, args.workload, base, spares, rates[0], args.trials,
            model=args.model, seed=args.seed, effort=args.effort,
        )
        axis, axis_of = "spare tracks", (lambda pt: pt.spare_tracks)
    else:
        points = runner.run_campaign(
            netlist, args.workload, base, rates, args.trials,
            model=args.model, seed=args.seed, effort=args.effort,
        )
        axis, axis_of = "defect rate", (lambda pt: pt.defect_rate)
    if args.json:
        print(json.dumps({
            "campaign": "spare-width" if spares is not None else "defect-rate",
            "workload": args.workload,
            "grid": [base.cols, base.rows],
            "model": args.model,
            "trials": args.trials,
            "backend": args.backend,
            "points": [pt.to_dict() for pt in points],
        }, indent=2))
        return 0
    t = TextTable(
        [axis, "W", "yield", "none/route/reroute/replace/fail",
         "wl ovh", "cp ovh"],
        title=f"Monte Carlo yield: {args.workload} on "
              f"{base.cols}x{base.rows} ({args.model}, "
              f"{args.trials} trials/point)",
    )
    for pt in points:
        h = pt.repair_histogram
        t.add_row([
            axis_of(pt), pt.channel_width, f"{pt.yield_fraction:.1%}",
            "/".join(str(h.get(k, 0)) for k in
                     ("none", "route_around", "reroute", "replace", "fail")),
            f"{pt.mean_wirelength_overhead:.3f}",
            f"{pt.mean_critical_path_overhead:.3f}",
        ])
    print(t.render())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    values = _sweep_values(args)
    if args.what in ("change-rate", "contexts"):
        if args.backend != "sequential" or args.workers is not None:
            print(f"note: --backend/--workers have no effect on the "
                  f"analytic {args.what} sweep (no routing involved)",
                  file=sys.stderr)
        return _analytic_sweep(args, values)
    return _routing_sweep(args, values)


_COMMANDS = {
    "patterns": cmd_patterns,
    "decoder": cmd_decoder,
    "area": cmd_area,
    "map": cmd_map,
    "batch": cmd_batch,
    "reorder": cmd_reorder,
    "sweep": cmd_sweep,
    "yield": cmd_yield,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
