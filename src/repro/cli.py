"""Command-line interface: a thin shell over :mod:`repro.api`.

Exposes the library's main flows without writing Python::

    python -m repro patterns                 # Figs. 3-5 classification
    python -m repro decoder 1000 0110       # synthesize & verify decoders
    python -m repro area --change-rate 0.05 # Section-5 evaluation
    python -m repro map --workload adder    # full flow on a workload
    python -m repro batch --workloads adder,crc --workers 2  # engine batch
    python -m repro reorder --workload adder  # context-ID optimization
    python -m repro sweep --what change-rate  # sensitivity curves
    python -m repro sweep --what channel-width --workload crc \
        --backend process                     # routing design-space sweep
    python -m repro yield --defect-rate 0.01,0.03 --trials 16 \
        --backend process                     # Monte Carlo yield campaign
    python -m repro import top.blif --grid 6 --json  # map your netlist
    python -m repro corpus --backend all --jobs       # regression corpus
    python -m repro run examples/specs/ci_smoke.json --json  # run a spec
    python -m repro trace examples/specs/ci_smoke.json -o trace.json
    python -m repro serve --port 8321 --results-dir results  # HTTP service
    python -m repro worker --url http://127.0.0.1:8321       # fleet worker
    python -m repro artifacts gc --results-dir results --keep 20
    python -m repro jobs submit examples/specs/ci_smoke.json --watch
    python -m repro jobs list --state running --limit 10

Every subcommand follows the same shape: parse arguments, build a
typed request (:mod:`repro.api.requests`), execute it on a
:class:`~repro.api.Session`, print the typed result — as a rendered
table, or as the result's versioned JSON with ``--json``.  ``run``
executes a declarative :class:`~repro.api.ExperimentSpec` file; with
``--stream`` it emits one JSON line per streamed row (per sweep point,
per yield cell, per mapped workload) instead of one final blob, so
long campaigns report as they go.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.api.workloads import WORKLOADS

_WORKLOADS = list(WORKLOADS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Architecture of a Multi-Context FPGA Using "
            "Reconfigurable Context Memory' (IPDPS 2005)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("patterns", help="Figs. 3-5: pattern classification")
    p.add_argument("--contexts", type=int, default=4)

    p = sub.add_parser("decoder", help="Fig. 9: synthesize pattern decoders")
    p.add_argument("patterns", nargs="+",
                   help="patterns in paper (C{n-1}..C0) bit order, e.g. 1000")

    p = sub.add_parser("area", help="Section 5: area evaluation")
    p.add_argument("--change-rate", type=float, default=0.05)
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--sharing", type=float, default=2.0)
    p.add_argument("--constants", choices=["paper", "textbook"], default="paper")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser("map", help="full flow: map a workload, print stats")
    p.add_argument("--workload", default="adder", choices=_WORKLOADS)
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--mutation", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--naive", action="store_true",
                   help="disable redundancy-aware mapping")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser(
        "batch", help="map several workloads through the shared engine"
    )
    p.add_argument("--workloads", default="adder,crc",
                   help=f"comma-separated subset of {','.join(_WORKLOADS)}")
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--mutation", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--workers", type=int, default=1,
                   help="mapping jobs run concurrently (1 = sequential)")
    p.add_argument("--backend", choices=["thread", "process"],
                   default="thread",
                   help="pool flavour for concurrent mapping jobs")
    p.add_argument("--naive", action="store_true",
                   help="disable redundancy-aware mapping")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser("reorder", help="optimize the context-ID assignment")
    p.add_argument("--workload", default="adder", choices=_WORKLOADS)
    p.add_argument("--contexts", type=int, default=4)
    p.add_argument("--mutation", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("sweep", help="design-space and sensitivity sweeps")
    p.add_argument("--what",
                   choices=["change-rate", "contexts", "channel-width",
                            "double-fraction", "fc"],
                   default="change-rate")
    p.add_argument("--workload", default="adder", choices=_WORKLOADS,
                   help="circuit for routing sweeps (ignored by the "
                        "analytic change-rate/contexts sweeps)")
    p.add_argument("--grid", type=int, default=6,
                   help="fabric side length for routing sweeps")
    p.add_argument("--values", default=None,
                   help="comma-separated sweep values (defaults per axis)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--effort", type=float, default=0.3,
                   help="placement effort for routing sweeps")
    p.add_argument("--backend",
                   choices=["sequential", "thread", "process"],
                   default="sequential",
                   help="how routing sweep points are executed")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size for thread/process backends "
                        "(default: all cores)")
    p.add_argument("--route-workers", type=int, default=None,
                   help="wavefront width for each point's initial "
                        "routing pass (bit-identical to sequential)")
    p.add_argument("--profile", action="store_true",
                   help="attach per-phase wall-clock timings to each "
                        "point (visible in --json output)")
    p.add_argument("--telemetry", action="store_true",
                   help="collect counters and trace spans from every "
                        "worker; attaches a `metrics` block to the "
                        "result (visible in --json output)")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser(
        "yield",
        help="Monte Carlo manufacturing-yield campaign over fabric defects",
    )
    p.add_argument("--workload", default="adder", choices=_WORKLOADS)
    p.add_argument("--grid", type=int, default=6,
                   help="fabric side length")
    p.add_argument("--width", type=int, default=8,
                   help="base channel width")
    p.add_argument("--defect-rate", default="0.0,0.01,0.03",
                   help="comma-separated per-resource defect rates")
    p.add_argument("--trials", type=int, default=8,
                   help="Monte Carlo dies sampled per campaign point")
    p.add_argument("--model", choices=["uniform", "clustered"],
                   default="uniform",
                   help="spatial defect model")
    p.add_argument("--spare", default=None,
                   help="comma-separated spare channel widths: sweeps "
                        "yield vs spares at the first defect rate "
                        "instead of sweeping rates")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--effort", type=float, default=0.3,
                   help="placement effort (golden mapping and re-place "
                        "repair)")
    p.add_argument("--backend",
                   choices=["sequential", "thread", "process"],
                   default="sequential",
                   help="how Monte Carlo trials are executed")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size for thread/process backends "
                        "(default: all cores)")
    p.add_argument("--route-workers", type=int, default=None,
                   help="wavefront width for golden/repair routing "
                        "passes (bit-identical to sequential)")
    p.add_argument("--profile", action="store_true",
                   help="attach per-phase wall-clock timings to each "
                        "campaign point (visible in --json output)")
    p.add_argument("--telemetry", action="store_true",
                   help="collect counters and trace spans from every "
                        "worker; attaches a `metrics` block to the "
                        "result (visible in --json output)")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of tables")

    p = sub.add_parser(
        "import",
        help="import BLIF / structural-Verilog netlists and map them "
             "as one multi-context program",
    )
    p.add_argument("files", nargs="+",
                   help="netlist source files, one per context "
                        "('-' reads a single source from stdin)")
    p.add_argument("--format", choices=["auto", "blif", "verilog"],
                   default="auto",
                   help="source format (auto: by file extension "
                        ".blif/.v/.sv; explicit format required for "
                        "stdin)")
    p.add_argument("--name", default=None,
                   help="program name (default: first netlist's name)")
    p.add_argument("--k", type=int, default=4,
                   help="LUT input width for tech mapping")
    p.add_argument("--grid", type=int, default=None,
                   help="pin the fabric side length (default: auto-fit "
                        "to the program)")
    p.add_argument("--width", type=int, default=None,
                   help="channel width (requires --grid)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--effort", type=float, default=None,
                   help="placement effort (default: the mapping flow's)")
    p.add_argument("--naive", action="store_true",
                   help="disable redundancy-aware mapping")
    p.add_argument("--no-verify", action="store_true",
                   help="skip functional verification of the mapped "
                        "program")
    p.add_argument("--json", action="store_true",
                   help="emit the result as JSON instead of a summary")

    p = sub.add_parser(
        "corpus",
        help="run the pinned netlist regression corpus and diff every "
             "result against its golden JSON",
    )
    p.add_argument("--root", default="regression_tests",
                   help="corpus directory tree (default: "
                        "regression_tests)")
    p.add_argument("--backend",
                   choices=["sequential", "thread", "process", "all"],
                   default="sequential",
                   help="backend(s) every case must reproduce its "
                        "golden on ('all' runs all three)")
    p.add_argument("--jobs", action="store_true",
                   help="also submit each case's serialized request "
                        "through the job manager (the `repro serve` "
                        "submission path)")
    p.add_argument("--update", action="store_true",
                   help="rewrite goldens from this run (deliberate "
                        "changes only)")
    p.add_argument("--json", action="store_true",
                   help="emit the corpus report as JSON")

    p = sub.add_parser(
        "run", help="execute a declarative ExperimentSpec JSON file"
    )
    p.add_argument("spec", help="path to the spec file (see repro.api.spec)")
    g = p.add_mutually_exclusive_group()
    g.add_argument("--stream", action="store_true",
                   help="emit one JSON line per streamed row instead of "
                        "one final result blob")
    g.add_argument("--json", action="store_true",
                   help="emit the spec result as JSON instead of a summary")
    p.add_argument("--results-dir", default=None,
                   help="persist every completed stage as JSON artifacts "
                        "under this directory")
    p.add_argument("--resume", action="store_true",
                   help="skip stages whose artifacts in --results-dir are "
                        "up to date (requires --results-dir)")

    p = sub.add_parser(
        "trace",
        help="run a spec with telemetry forced on and write the merged "
             "worker spans as Chrome trace-event JSON (Perfetto-viewable)",
    )
    p.add_argument("spec", help="path to the spec file (see repro.api.spec)")
    p.add_argument("-o", "--output", default="trace.json",
                   help="trace-event JSON output path (default: trace.json)")

    p = sub.add_parser(
        "serve",
        help="serve the job API over HTTP (submit/poll/cancel/artifacts)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--results-dir", default=None,
                   help="artifact store directory (enables resume and "
                        "GET /v1/artifacts)")
    p.add_argument("--workers", type=int, default=2,
                   help="how many jobs run concurrently")
    p.add_argument("--executor", choices=["thread", "process", "external"],
                   default="thread",
                   help="how locally-dispatched jobs run (external = "
                        "remote `repro worker` pulls only)")
    p.add_argument("--auth", default=None, metavar="TOKENS_JSON",
                   help="bearer-token config file; gates submit/cancel "
                        "and worker endpoints")
    p.add_argument("--max-queue", type=int, default=1024,
                   help="pending-job cap before submissions get 429")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds a worker lease survives without events")
    p.add_argument("--max-retries", type=int, default=3,
                   help="lease-expiry requeues before a job fails")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds SIGTERM waits for running jobs")

    p = sub.add_parser(
        "worker",
        help="pull and run jobs from a coordinator (`repro serve`)",
    )
    p.add_argument("--url", default="http://127.0.0.1:8321",
                   help="coordinator base URL")
    p.add_argument("--token", default=None,
                   help="bearer token (when the coordinator runs --auth)")
    p.add_argument("--name", default=None,
                   help="worker name reported with each lease")
    p.add_argument("--poll", type=float, default=1.0,
                   help="seconds each idle lease long-poll waits")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after this many completed jobs")

    p = sub.add_parser(
        "artifacts",
        help="inspect or garbage-collect a results directory",
    )
    p.add_argument("action", choices=["list", "gc"])
    p.add_argument("--results-dir", required=True,
                   help="the artifact store to operate on")
    p.add_argument("--max-age-days", type=float, default=None,
                   help="gc: drop runs whose newest file is older")
    p.add_argument("--keep", type=int, default=None,
                   help="gc: keep at most this many newest runs")
    p.add_argument("--dry-run", action="store_true",
                   help="gc: report what would be removed, remove nothing")
    p.add_argument("--json", action="store_true",
                   help="emit JSON instead of a table")

    p = sub.add_parser(
        "jobs", help="talk to a running `repro serve` instance"
    )
    p.add_argument("action",
                   choices=["submit", "status", "events", "cancel",
                            "list", "result"])
    p.add_argument("target", nargs="?", default=None,
                   help="spec file (submit) or job id "
                        "(status/events/cancel/result)")
    p.add_argument("--url", default="http://127.0.0.1:8321",
                   help="base URL of the service")
    p.add_argument("--token", default=None,
                   help="bearer token (when the server runs --auth)")
    p.add_argument("--resume", action="store_true",
                   help="submit with resume (skip stages already in the "
                        "server's artifact store)")
    p.add_argument("--priority", type=int, default=0,
                   help="submit: scheduling priority (higher runs first)")
    p.add_argument("--watch", action="store_true",
                   help="after submit, follow the job's event stream")
    p.add_argument("--state", default=None,
                   choices=["queued", "running", "done", "failed",
                            "cancelled"],
                   help="list: only jobs in this state")
    p.add_argument("--limit", type=int, default=None,
                   help="list: only the newest N jobs")
    return parser


def _session():
    from repro.api import Session

    return Session()


def cmd_patterns(args: argparse.Namespace) -> int:
    from repro.analysis.pattern_stats import context_id_table, pattern_class_table

    print(context_id_table(args.contexts))
    print()
    print(pattern_class_table(args.contexts))
    return 0


def cmd_decoder(args: argparse.Namespace) -> int:
    from repro.core.decoder_synth import synthesize_single
    from repro.core.patterns import ContextPattern

    for bits in args.patterns:
        if any(b not in "01" for b in bits):
            print(f"error: pattern {bits!r} must be binary", file=sys.stderr)
            return 2
        pattern = ContextPattern.from_paper_row(tuple(int(b) for b in bits))
        block, net, n_ses = synthesize_single(pattern)
        swept = block.read_pattern(net)
        print(f"{bits}: class={pattern.classify()} SEs={n_ses} "
              f"per-context values={swept}")
    return 0


def cmd_area(args: argparse.Namespace) -> int:
    from repro.analysis.report import area_comparison_table, breakdown_table
    from repro.api import AreaRequest

    request = AreaRequest(
        change_rate=args.change_rate, contexts=args.contexts,
        sharing=args.sharing, constants=args.constants,
    )
    result = _session().run(request)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(area_comparison_table(result.comparisons))
    print()
    print(breakdown_table(result.comparisons["cmos"], "Breakdown (CMOS)"))
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    from repro.analysis.redundancy import redundancy_report
    from repro.api import ExecutionConfig, MapRequest

    request = MapRequest(
        workload=args.workload, contexts=args.contexts,
        mutation=args.mutation, share_aware=not args.naive,
        execution=ExecutionConfig(seed=args.seed),
    )
    result = _session().run(request)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"workload {args.workload}: "
          f"{list(result.luts_per_context)} LUTs per context, "
          f"grid {result.grid[0]}x{result.grid[1]}, "
          f"verified={result.verified}")
    print()
    print(redundancy_report(result.experiment.stats).render())
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.api import BatchRequest, ExecutionConfig

    names = tuple(w.strip() for w in args.workloads.split(",") if w.strip())
    request = BatchRequest(
        workloads=names, contexts=args.contexts, mutation=args.mutation,
        share_aware=not args.naive,
        execution=ExecutionConfig(
            backend=args.backend, workers=args.workers, seed=args.seed,
        ),
    )
    result = _session().run(request)
    if args.json:
        print(json.dumps([r.to_dict() for r in result.results], indent=2))
        return 0
    for r in result.results:
        print(f"{r.workload}: grid {r.grid[0]}x{r.grid[1]} "
              f"verified={r.verified} "
              f"reuse={r.reuse_fraction:.1%} "
              f"change-rate={r.switch_change_rate:.1%}")
    return 0


def cmd_reorder(args: argparse.Namespace) -> int:
    from repro.api import ExecutionConfig, ReorderRequest

    request = ReorderRequest(
        workload=args.workload, contexts=args.contexts,
        mutation=args.mutation, execution=ExecutionConfig(seed=args.seed),
    )
    result = _session().run(request)
    print(f"decoder cost before: {result.cost_before} SEs")
    print(f"decoder cost after : {result.cost_after} SEs "
          f"(saving {result.saving:.1%})")
    print(f"physical ID schedule: {list(result.schedule)}")
    return 0


def _sweep_values(args: argparse.Namespace) -> tuple[float, ...] | None:
    if args.values is None:
        return None
    cast = int if args.what in ("contexts", "channel-width") else float
    return tuple(cast(v) for v in args.values.split(",") if v.strip())


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import ExecutionConfig, SweepRequest
    from repro.utils.tables import TextTable

    request = SweepRequest(
        what=args.what, workload=args.workload, grid=args.grid,
        values=_sweep_values(args), profile=args.profile,
        execution=ExecutionConfig(
            backend=args.backend, workers=args.workers, seed=args.seed,
            effort=args.effort, route_workers=args.route_workers,
            telemetry=args.telemetry,
        ),
    )
    if request.analytic and (
        args.backend != "sequential" or args.workers is not None
    ):
        print(f"note: --backend/--workers have no effect on the "
              f"analytic {args.what} sweep (no routing involved)",
              file=sys.stderr)
    if not request.analytic and args.backend == "sequential" \
            and args.workers is not None:
        print("note: --workers has no effect with the sequential backend; "
              "pass --backend thread|process to parallelize",
              file=sys.stderr)
    result = _session().run(request)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    if request.analytic:
        from repro.analysis.report import sweep_table

        label = "change rate" if args.what == "change-rate" else "contexts"
        title = (
            "Area ratio vs change rate" if args.what == "change-rate"
            else "Area ratio vs context count"
        )
        rows = [(pt.value, pt.cmos_ratio, pt.fepg_ratio)
                for pt in result.points]
        print(sweep_table(rows, [label, "CMOS", "FePG"], title))
        return 0
    t = TextTable(
        [args.what, "routed", "wirelength", "critical path", "iterations"],
        title=f"{args.what} sweep: {args.workload} on "
              f"{result.grid[0]}x{result.grid[1]}",
    )
    for pt in result.points:
        t.add_row([
            pt.value, pt.routed, pt.wirelength,
            f"{pt.critical_path:.1f}", pt.iterations,
        ])
    print(t.render())
    return 0


def cmd_yield(args: argparse.Namespace) -> int:
    from repro.api import ExecutionConfig, YieldRequest
    from repro.utils.tables import TextTable

    try:
        rates = tuple(
            float(v) for v in args.defect_rate.split(",") if v.strip()
        )
        spares = (
            tuple(int(v) for v in args.spare.split(",") if v.strip())
            if args.spare is not None else None
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    request = YieldRequest(
        workload=args.workload, grid=args.grid, width=args.width,
        rates=rates, trials=args.trials, model=args.model,
        spares=spares, profile=args.profile,
        execution=ExecutionConfig(
            backend=args.backend, workers=args.workers, seed=args.seed,
            effort=args.effort, route_workers=args.route_workers,
            telemetry=args.telemetry,
        ),
    )
    result = _session().run(request)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    if request.campaign == "spare-width":
        axis, axis_of = "spare tracks", (lambda pt: pt.spare_tracks)
    else:
        axis, axis_of = "defect rate", (lambda pt: pt.defect_rate)
    t = TextTable(
        [axis, "W", "yield", "none/route/reroute/replace/fail",
         "wl ovh", "cp ovh"],
        title=f"Monte Carlo yield: {args.workload} on "
              f"{result.grid[0]}x{result.grid[1]} ({args.model}, "
              f"{args.trials} trials/point)",
    )
    for pt in result.points:
        h = pt.repair_histogram
        t.add_row([
            axis_of(pt), pt.channel_width, f"{pt.yield_fraction:.1%}",
            "/".join(str(h.get(k, 0)) for k in
                     ("none", "route_around", "reroute", "replace", "fail")),
            f"{pt.mean_wirelength_overhead:.3f}",
            f"{pt.mean_critical_path_overhead:.3f}",
        ])
    print(t.render())
    return 0


def cmd_import(args: argparse.Namespace) -> int:
    import os

    from repro.api import ExecutionConfig, ImportRequest
    from repro.netlist.frontend import EXTENSIONS

    sources = []
    for path in args.files:
        if path == "-":
            if args.format == "auto":
                print("error: stdin needs an explicit --format",
                      file=sys.stderr)
                return 2
            sources.append({"text": sys.stdin.read(),
                            "format": args.format, "name": "<stdin>"})
            continue
        fmt = args.format
        if fmt == "auto":
            fmt = EXTENSIONS.get(os.path.splitext(path)[1].lower())
            if fmt is None:
                print(f"error: cannot infer format of {path!r}; pass "
                      f"--format blif|verilog", file=sys.stderr)
                return 2
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"error: cannot read {path!r}: {exc}", file=sys.stderr)
            return 2
        sources.append({"text": text, "format": fmt, "name": path})
    request = ImportRequest(
        sources=tuple(sources), name=args.name, k=args.k,
        grid=args.grid, width=args.width,
        share_aware=not args.naive, verify=not args.no_verify,
        execution=ExecutionConfig(seed=args.seed, effort=args.effort),
    )
    result = _session().run(request)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    print(f"program {result.name!r}: {result.n_contexts} context(s) on "
          f"grid {result.grid[0]}x{result.grid[1]}, "
          f"verified={result.verified}")
    for ctx in result.contexts:
        print(f"  {ctx['name']} ({ctx['format']}): {ctx['luts']} LUTs, "
              f"{ctx['dffs']} DFFs, depth {ctx['depth']}, "
              f"{ctx['inputs']}/{ctx['outputs']} io")
    print(f"wirelength={result.wirelength} "
          f"critical_path={result.critical_path:.2f} "
          f"reuse={result.reuse_fraction:.1%}")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from repro.netlist.frontend.corpus import run_corpus

    backends = (
        ("sequential", "thread", "process") if args.backend == "all"
        else (args.backend,)
    )
    report = run_corpus(_session(), args.root, backends=backends,
                        update=args.update, check_jobs=args.jobs)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0 if report["ok"] else 1
    for case in report["cases"]:
        runs = " ".join(
            f"{label}={'ok' if match else 'DIFF'}"
            for label, match in case["runs"].items()
        )
        print(f"{case['case']}: {case['status']} ({runs})")
    verdict = "ok" if report["ok"] else "FAILED"
    print(f"corpus {verdict}: {len(report['cases'])} case(s) on "
          f"{'/'.join(report['backends'])}"
          f"{' + jobs' if report['check_jobs'] else ''}")
    return 0 if report["ok"] else 1


def cmd_run(args: argparse.Namespace) -> int:
    from repro.api import ExperimentSpec

    spec = ExperimentSpec.from_file(args.spec)
    if args.resume and args.results_dir is None:
        print("error: --resume requires --results-dir", file=sys.stderr)
        return 2
    if args.results_dir is not None or spec.is_grid:
        # artifact persistence / grid fan-out ride the job layer (one
        # in-process JobManager; same rows, plus a results dir)
        return _run_managed(args, spec)
    session = _session()
    if args.stream:
        # one JSON line per streamed row: long campaigns report as they
        # go, and concatenating the rows reproduces the blocking result
        for stage, item in session.stream_spec(spec):
            print(json.dumps({"stage": stage, "data": item.to_dict()}),
                  flush=True)
        return 0
    result = session.run_spec(spec)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    _print_spec_summary(spec, result)
    return 0


def _print_spec_summary(spec, result) -> None:
    print(f"spec {result.name!r} (workload {result.workload}): "
          f"{len(result.stages)} stages")
    for stage_doc, stage_result in zip(spec.stages, result.stages):
        tag = stage_doc["stage"]
        summary = _stage_summary(stage_result)
        print(f"  {tag}: {summary}")


def _run_managed(args: argparse.Namespace, spec) -> int:
    from repro.service import ArtifactStore, JobManager

    store = (
        ArtifactStore(args.results_dir) if args.results_dir is not None
        else None
    )
    manager = JobManager(session=_session(), workers=2, store=store)
    try:
        handle = manager.submit(spec, resume=args.resume)
        # job events name stages uniquely; the CLI's row lines keep
        # printing the stage *kind*, exactly like the unmanaged path
        kind_of = dict(zip(spec.stage_names(),
                           (s["stage"] for s in spec.stages)))
        if args.stream:
            for ev in handle.events():
                if ev["event"] == "row":
                    print(json.dumps({
                        "stage": kind_of.get(ev["stage"], ev["stage"]),
                        "data": ev["data"],
                    }), flush=True)
            handle.result()  # surface a failure as its exception
            return 0
        result = handle.result()
        results = list(result) if isinstance(result, tuple) else [result]
        if args.json:
            docs = [r.to_dict() for r in results]
            print(json.dumps(docs[0] if len(docs) == 1 else docs, indent=2))
            return 0
        for r in results:
            _print_spec_summary(spec, r)
        return 0
    finally:
        manager.shutdown(wait=False, cancel=True)


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.api import ExperimentSpec
    from repro.utils.telemetry import chrome_trace

    spec = ExperimentSpec.from_file(args.spec)
    if spec.is_grid:
        print("error: trace runs one spec cell; expand the grid and "
              "trace a single cell", file=sys.stderr)
        return 2
    # force telemetry on at the spec level: stages that don't name
    # `telemetry` in their own execution dict inherit it
    doc = spec.to_dict()
    exec_doc = dict(doc.get("execution") or {})
    exec_doc["telemetry"] = True
    doc["execution"] = exec_doc
    spec = ExperimentSpec.from_dict(doc)
    result = _session().run_spec(spec)
    blocks = [m for m in (getattr(sr, "metrics", None)
                          for sr in result.stages) if m]
    trace = chrome_trace(blocks)
    with open(args.output, "w") as fh:
        json.dump(trace, fh)
        fh.write("\n")
    workers = {ev.get("pid") for ev in trace["traceEvents"]}
    print(f"wrote {len(trace['traceEvents'])} events "
          f"({len(workers)} worker track(s)) to {args.output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import run_server

    return run_server(host=args.host, port=args.port,
                      results_dir=args.results_dir, workers=args.workers,
                      executor=args.executor, auth=args.auth,
                      max_queue=args.max_queue, lease_ttl=args.lease_ttl,
                      max_retries=args.max_retries,
                      drain_timeout=args.drain_timeout)


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.fleet import worker_main

    return worker_main(args.url, token=args.token, name=args.name,
                       poll=args.poll, max_jobs=args.max_jobs)


def cmd_artifacts(args: argparse.Namespace) -> int:
    from repro.fleet import artifact_index, gc_artifacts
    from repro.service import ArtifactStore

    store = ArtifactStore(args.results_dir)
    if args.action == "list":
        entries = artifact_index(store)
        if args.json:
            print(json.dumps({
                "artifacts": [e.to_dict() for e in entries],
                "count": len(entries),
                "bytes": sum(e.bytes for e in entries),
            }, indent=2))
            return 0
        print(f"{'kind':<8} {'files':>5} {'bytes':>10}  relpath")
        for entry in entries:
            print(f"{entry.kind:<8} {entry.files:>5} {entry.bytes:>10}  "
                  f"{entry.relpath}")
        print(f"total: {len(entries)} unit(s), "
              f"{sum(e.bytes for e in entries)} bytes")
        return 0
    report = gc_artifacts(store, max_age_days=args.max_age_days,
                          max_count=args.keep, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    verb = "would remove" if args.dry_run else "removed"
    print(f"scanned {report.scanned} unit(s); {verb} {report.deleted} "
          f"({report.bytes_freed} bytes), kept {report.kept}")
    for relpath in report.removed:
        print(f"  - {relpath}")
    return 0


def cmd_jobs(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.parse
    import urllib.request

    base = args.url.rstrip("/")

    def call(method: str, path: str, payload=None):
        data = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        if args.token:
            headers["Authorization"] = f"Bearer {args.token}"
        req = urllib.request.Request(base + path, data=data, method=method,
                                     headers=headers)
        return urllib.request.urlopen(req)

    def follow_events(job_id: str) -> None:
        with call("GET", f"/v1/jobs/{job_id}/events") as resp:
            for line in resp:
                print(line.decode("utf-8").rstrip("\n"), flush=True)

    try:
        if args.action == "list":
            params = {}
            if args.state is not None:
                params["state"] = args.state
            if args.limit is not None:
                params["limit"] = str(args.limit)
            path = "/v1/jobs"
            if params:
                path += "?" + urllib.parse.urlencode(params)
            print(call("GET", path).read().decode())
        elif args.action == "submit":
            if args.target is None:
                print("error: submit needs a spec file", file=sys.stderr)
                return 2
            try:
                with open(args.target) as fh:
                    doc = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                # a local file problem, not a server one — diagnose it
                # as such rather than falling into "cannot reach"
                print(f"error: cannot read spec {args.target!r}: {exc}",
                      file=sys.stderr)
                return 2
            resp = json.loads(call("POST", "/v1/jobs", {
                "spec": doc, "resume": args.resume,
                "priority": args.priority,
            }).read())
            print(json.dumps(resp, indent=2))
            if args.watch:
                follow_events(resp["job"]["job_id"])
        else:
            if args.target is None:
                print(f"error: {args.action} needs a job id",
                      file=sys.stderr)
                return 2
            if args.action == "status":
                print(call("GET", f"/v1/jobs/{args.target}").read().decode())
            elif args.action == "result":
                print(call("GET", f"/v1/jobs/{args.target}/result")
                      .read().decode())
            elif args.action == "cancel":
                print(call("DELETE",
                           f"/v1/jobs/{args.target}").read().decode())
            elif args.action == "events":
                follow_events(args.target)
        return 0
    except urllib.error.HTTPError as exc:
        print(f"error: HTTP {exc.code}: "
              f"{exc.read().decode(errors='replace')}", file=sys.stderr)
        return 2
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 2


def _stage_summary(result) -> str:
    """One human line per spec stage result (rendered from the same
    per-type payloads the report stage records)."""
    from repro.api import ReportResult
    from repro.api.session import stage_payload

    if isinstance(result, ReportResult):
        return json.dumps(result.summary)
    named = stage_payload(result)
    if named is None:
        return repr(result)
    kind, p = named
    if kind == "map":
        return (f"grid {p['grid'][0]}x{p['grid'][1]}, "
                f"verified={p['verified']}, wirelength={p['wirelength']}")
    if kind == "batch":
        return (f"{len(p['workloads'])} workloads, "
                f"all_verified={p['all_verified']}")
    if kind == "sweep":
        if "routed" not in p:  # analytic axes route nothing
            return f"{p['points']} points"
        return f"{p['points']} points ({p['routed']} routed)"
    if kind == "yield":
        return (f"{p['points']} points, "
                f"yield {p['min_yield']:.1%}..{p['max_yield']:.1%}")
    if kind == "reorder":
        return f"decoder cost {p['cost_before']} -> {p['cost_after']} SEs"
    return json.dumps(p)


_COMMANDS = {
    "patterns": cmd_patterns,
    "decoder": cmd_decoder,
    "area": cmd_area,
    "map": cmd_map,
    "batch": cmd_batch,
    "reorder": cmd_reorder,
    "sweep": cmd_sweep,
    "yield": cmd_yield,
    "import": cmd_import,
    "corpus": cmd_corpus,
    "run": cmd_run,
    "trace": cmd_trace,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "artifacts": cmd_artifacts,
    "jobs": cmd_jobs,
}


def main(argv: Sequence[str] | None = None) -> int:
    from repro.errors import (
        AuthError,
        JobError,
        MappingError,
        RequestError,
        SynthesisError,
    )

    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (RequestError, JobError, AuthError, SynthesisError,
            MappingError) as exc:
        # one altitude for every command: invalid request/spec values
        # (including SpecError), job-layer misuse, and netlist
        # import/synthesis failures report as `error: ...` and exit 2
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
