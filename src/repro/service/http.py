"""Asyncio HTTP service over the job layer — stdlib only.

A tiny, dependency-free HTTP/1.1 server exposing the
:class:`~repro.service.jobs.JobManager` lifecycle.  The wire protocol
speaks **nothing but the api's request/result contract**: submissions
are typed-request / spec payloads, every response body is versioned
JSON, and the event stream's ``row`` payloads are exactly what
``Session.stream`` yields — bit-identical to the blocking result.

Endpoints::

    GET    /healthz                  liveness: {"ok": true}
    POST   /v1/jobs                  submit {"request": {...}} or
                                     {"spec": {...}} (+ "resume": true,
                                     "priority": N)
                                     -> 202 {"job": <job_status>}
    GET    /v1/jobs?state=&limit=    -> {"jobs": [<job_status>, ...]}
    GET    /v1/jobs/{id}             -> {"job": <job_status>}
    GET    /v1/jobs/{id}/result      terminal job's typed result payload
    GET    /v1/jobs/{id}/events      NDJSON stream: replay + live, one
                                     event per line, ends after `done`
    DELETE /v1/jobs/{id}             cancel -> {"job": ..., "cancelled": b}
    POST   /v1/workers/lease         fleet pull: {"worker": w, "wait": s}
                                     -> {"lease": <lease doc> | null}
    POST   /v1/workers/{id}/events   worker event batch -> {"ok": true,
                                     "cancelled": b, "state": s}
    GET    /v1/artifacts             retention index of the results dir
    GET    /v1/artifacts/{path}      a stored artifact (results dir)
    GET    /v1/metrics               Prometheus text exposition of the
                                     process-wide metrics registry

Status codes carry the scheduler's policy: ``401`` (missing/bad
bearer token when ``--auth`` is configured — submit, cancel and
worker endpoints are gated; reads stay open), ``429 + Retry-After``
(queue full or client quota exhausted), ``410`` (posting against an
expired lease — the job was requeued).

Connections are ``Connection: close`` (one request per connection);
the event stream is length-less NDJSON delimited by the close.  Job
event iterators block, so each events subscriber gets a pump thread
feeding an ``asyncio.Queue`` — the asyncio side only ever awaits.

:class:`ReproService` runs the loop in a daemon thread
(:meth:`ReproService.start` returns the bound address, so ``port=0``
works for tests); the CLI's ``repro serve`` blocks on it, drains on
SIGTERM (bounded by ``--drain-timeout``) and exits nonzero when jobs
had to be abandoned.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import (
    AuthError,
    JobError,
    JobNotFound,
    LeaseExpired,
    QueueFull,
    QuotaExceeded,
    ReproError,
    RequestError,
)
from repro.service.jobs import JobManager
from repro.service.metrics import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.service.metrics import render_prometheus

#: Largest accepted request body (a spec is a few KB; 8 MiB is ample).
MAX_BODY = 8 << 20

#: Seconds a 429 tells the client to back off before retrying.
RETRY_AFTER = 1

_SENTINEL = object()


class ReproService:
    """One JobManager behind an asyncio HTTP front end."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 8321, auth=None) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        #: a :class:`~repro.fleet.TokenAuth` (or None for open access)
        self.auth = auth
        self.address: "tuple[str, int] | None" = None
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._thread: "threading.Thread | None" = None
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None

    # -- lifecycle ----------------------------------------------------------- #
    def start(self) -> "tuple[str, int]":
        """Serve on a daemon thread; returns the bound ``(host, port)``."""
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Stop serving (leaves the manager and its jobs alone)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
        finally:
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop.wait()

    # -- connection handling ------------------------------------------------- #
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, headers, body = \
                await self._read_request(reader)
            if method is not None:
                await self._route(method, path, query, headers, body,
                                  writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request/mid-stream
        except Exception as exc:  # a handler bug must not kill the loop
            try:
                await self._respond_json(writer, 500, {"error": str(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None, None, {}, {}, b""
        try:
            method, target, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None, None, {}, {}, b""
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = b""
        if length:
            if length > MAX_BODY:
                raise RequestError(f"request body over {MAX_BODY} bytes")
            body = await reader.readexactly(length)
        split = urlsplit(target)
        path = unquote(split.path)
        query = {name: values[-1]
                 for name, values in parse_qs(split.query).items()}
        return method.upper(), path, query, headers, body

    # -- auth ---------------------------------------------------------------- #
    def _authenticate(self, headers: dict):
        """The submitting client, or ``None`` when auth is off.

        Raises :class:`~repro.errors.AuthError` (the 401) when a token
        file is configured and the request lacks a valid bearer token.
        """
        if self.auth is None:
            return None
        return self.auth.authenticate(headers.get("authorization"))

    # -- routing ------------------------------------------------------------- #
    async def _route(self, method: str, path: str, query: dict,
                     headers: dict, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        try:
            if path == "/healthz" and method == "GET":
                await self._respond_json(writer, 200, {"ok": True})
            elif path == "/v1/jobs" and method == "POST":
                await self._post_job(body, headers, writer)
            elif path == "/v1/jobs" and method == "GET":
                await self._list_jobs(query, writer)
            elif path == "/v1/metrics" and method == "GET":
                await self._respond(writer, 200,
                                    render_prometheus().encode("utf-8"),
                                    _METRICS_CONTENT_TYPE)
            elif path == "/v1/workers/lease" and method == "POST":
                self._authenticate(headers)
                await self._lease(body, writer)
            elif path.startswith("/v1/workers/") and \
                    path.endswith("/events") and method == "POST":
                self._authenticate(headers)
                lease_id = path[len("/v1/workers/"):-len("/events")]
                await self._worker_events(lease_id, body, writer)
            elif path.startswith("/v1/jobs/"):
                await self._job_route(method, path, headers, writer)
            elif path == "/v1/artifacts" and method == "GET":
                await self._artifact_index(writer)
            elif path.startswith("/v1/artifacts/") and method == "GET":
                await self._get_artifact(path[len("/v1/artifacts/"):],
                                         writer)
            else:
                await self._respond_json(writer, 404,
                                         {"error": f"no route {path!r}"})
        except AuthError as exc:
            await self._respond_json(
                writer, 401, {"error": str(exc)},
                extra_headers={"WWW-Authenticate": "Bearer"})
        except JobNotFound as exc:
            await self._respond_json(writer, 404, {"error": str(exc)})
        except LeaseExpired as exc:
            await self._respond_json(writer, 410, {"error": str(exc)})
        except (QueueFull, QuotaExceeded) as exc:
            await self._respond_json(
                writer, 429, {"error": str(exc),
                              "retry_after": RETRY_AFTER},
                extra_headers={"Retry-After": str(RETRY_AFTER)})
        except ReproError as exc:  # RequestError, SpecError, JobError...
            await self._respond_json(writer, 400, {"error": str(exc)})

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"request body is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise RequestError("request body must be a JSON object")
        return doc

    async def _post_job(self, body: bytes, headers: dict,
                        writer: asyncio.StreamWriter) -> None:
        client = self._authenticate(headers)
        doc = self._parse_body(body)
        task = doc.get("spec") if "spec" in doc else doc.get("request")
        if task is None:
            raise RequestError(
                "submission needs a 'request' or 'spec' payload"
            )
        resume = bool(doc.get("resume", False))
        priority = doc.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise RequestError(
                f"priority must be an integer, got {priority!r}"
            )
        # submission validates the payload (spec validation builds every
        # stage request) — keep it off the event loop
        handle = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.manager.submit(
                task, resume=resume, priority=priority,
                client=client.name if client is not None else None,
            )
        )
        await self._respond_json(writer, 202,
                                 {"job": handle.status().to_dict()})

    async def _list_jobs(self, query: dict,
                         writer: asyncio.StreamWriter) -> None:
        state = query.get("state")
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"])
            except ValueError:
                raise RequestError(
                    f"limit must be an integer, got {query['limit']!r}"
                ) from None
        snaps = self.manager.jobs(state=state, limit=limit)
        await self._respond_json(writer, 200, {
            "jobs": [s.to_dict() for s in snaps]
        })

    async def _lease(self, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        doc = self._parse_body(body)
        worker = str(doc.get("worker") or "")
        wait = doc.get("wait", 0.0)
        if not isinstance(wait, (int, float)) or isinstance(wait, bool):
            raise RequestError(f"wait must be a number, got {wait!r}")
        lease = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.manager.lease_job(worker=worker,
                                                 wait=float(wait))
        )
        await self._respond_json(writer, 200, {"lease": lease})

    async def _worker_events(self, lease_id: str, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        doc = self._parse_body(body)
        events = doc.get("events")
        if events is None:
            raise RequestError("worker post needs an 'events' list")
        worker = str(doc.get("worker") or "")
        outcome = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.manager.apply_worker_events(
                lease_id, events, worker=worker)
        )
        await self._respond_json(writer, 200, outcome)

    async def _job_route(self, method: str, path: str, headers: dict,
                         writer: asyncio.StreamWriter) -> None:
        parts = path.split("/")  # ['', 'v1', 'jobs', id, (events|result)]
        job_id = parts[3] if len(parts) > 3 else ""
        tail = parts[4] if len(parts) > 4 else None
        handle = self.manager.handle(job_id)
        if tail is None and method == "GET":
            await self._respond_json(writer, 200,
                                     {"job": handle.status().to_dict()})
        elif tail is None and method == "DELETE":
            self._authenticate(headers)
            cancelled = handle.cancel()
            await self._respond_json(writer, 200, {
                "job": handle.status().to_dict(),
                "cancelled": cancelled,
            })
        elif tail == "result" and method == "GET":
            payload = self.manager.result_payload(job_id)
            await self._respond_json(writer, 200, payload)
        elif tail == "events" and method == "GET":
            await self._stream_events(handle, writer)
        else:
            await self._respond_json(
                writer, 405 if tail in (None, "events", "result") else 404,
                {"error": f"unsupported {method} on {path!r}"})

    async def _stream_events(self, handle,
                             writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        gone = threading.Event()  # set when the client stops reading

        def pump() -> None:
            # a blocking iterator feeding the async side; ends at the
            # job's terminal event, or at the next event after the
            # client disconnects (a long campaign must not keep one
            # thread + queue alive per abandoned subscriber)
            try:
                for event in handle.events():
                    if gone.is_set():
                        return
                    loop.call_soon_threadsafe(queue.put_nowait, event)
            except Exception as exc:
                loop.call_soon_threadsafe(
                    queue.put_nowait, {"event": "error", "error": str(exc)}
                )
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _SENTINEL)

        threading.Thread(target=pump, name="repro-events",
                         daemon=True).start()
        try:
            while True:
                event = await queue.get()
                if event is _SENTINEL:
                    break
                writer.write(json.dumps(event).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            gone.set()

    def _store_or_raise(self):
        store = self.manager.store
        if store is None:
            raise JobError("this server has no artifact store "
                           "(start it with --results-dir)")
        return store

    async def _artifact_index(self,
                              writer: asyncio.StreamWriter) -> None:
        from repro.fleet.gc import artifact_index

        store = self._store_or_raise()
        entries = await asyncio.get_running_loop().run_in_executor(
            None, lambda: artifact_index(store)
        )
        await self._respond_json(writer, 200, {
            "artifacts": [entry.to_dict() for entry in entries],
            "count": len(entries),
            "bytes": sum(entry.bytes for entry in entries),
        })

    async def _get_artifact(self, relpath: str,
                            writer: asyncio.StreamWriter) -> None:
        store = self._store_or_raise()
        data = await asyncio.get_running_loop().run_in_executor(
            None, lambda: store.read_bytes(relpath)
        )
        await self._respond(writer, 200, data, "application/json")

    # -- responses ----------------------------------------------------------- #
    async def _respond_json(self, writer: asyncio.StreamWriter, status: int,
                            payload: dict,
                            extra_headers: "dict | None" = None) -> None:
        await self._respond(writer, status,
                            json.dumps(payload, indent=2).encode("utf-8"),
                            "application/json",
                            extra_headers=extra_headers)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       body: bytes, content_type: str,
                       extra_headers: "dict | None" = None) -> None:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  401: "Unauthorized", 404: "Not Found",
                  405: "Method Not Allowed", 410: "Gone",
                  429: "Too Many Requests",
                  500: "Internal Server Error"}.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def run_server(host: str = "127.0.0.1", port: int = 8321,
               results_dir: "str | None" = None, workers: int = 2,
               executor: str = "thread", auth: "str | None" = None,
               max_queue: int = 1024, lease_ttl: float = 30.0,
               max_retries: int = 3, drain_timeout: float = 10.0,
               ready=print) -> int:
    """Blocking entry point behind ``repro serve``; exit code.

    Builds a fresh :class:`~repro.api.Session`-backed
    :class:`JobManager` (with an artifact store when ``results_dir``
    is given), recovers whatever the results dir's journal says was
    in flight, announces the bound address via ``ready`` and serves
    until SIGTERM/SIGINT.  Shutdown is graceful: leasing stops, running
    jobs get ``drain_timeout`` seconds to finish, state is journaled —
    and the exit code is nonzero when jobs had to be abandoned.
    """
    from repro.fleet.auth import TokenAuth
    from repro.service.artifacts import ArtifactStore

    store = ArtifactStore(results_dir) if results_dir is not None else None
    auth_cfg = TokenAuth.load(auth) if auth is not None else None
    manager = JobManager(
        workers=workers, store=store, executor=executor,
        max_queue=max_queue, lease_ttl=lease_ttl,
        max_retries=max_retries,
        quotas=auth_cfg.quotas() if auth_cfg is not None else None,
    )
    recovered = manager.recover() if store is not None else []
    service = ReproService(manager, host=host, port=port, auth=auth_cfg)
    bound_host, bound_port = service.start()
    ready(f"repro service listening on http://{bound_host}:{bound_port} "
          f"(workers={workers}, executor={executor}"
          + (f", results={results_dir}" if results_dir else "")
          + (", auth=on" if auth_cfg is not None else "") + ")")
    if recovered:
        ready(f"recovered {len(recovered)} journaled job(s): "
              + ", ".join(h.job_id for h in recovered))
    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        ready(f"received signal {signum}; draining")
        stop.set()

    try:
        signal.signal(signal.SIGTERM, _on_signal)
    except ValueError:
        pass  # not the main thread (embedded/test use); stop() only
    try:
        stop.wait()
    except KeyboardInterrupt:
        ready("interrupted; draining")
    abandoned = manager.drain(timeout=drain_timeout)
    service.stop()
    manager.shutdown(wait=False, cancel=True)
    if abandoned:
        ready(f"abandoned {len(abandoned)} unfinished job(s): "
              + ", ".join(abandoned)
              + " (journaled; a restart with the same --results-dir "
                "resumes them)")
        return 1
    ready("drained clean")
    return 0
