"""repro.service — job-oriented execution and HTTP serving.

The serving layer the api facade was built for: submit any typed
request or :class:`~repro.api.ExperimentSpec` as a *job*, observe it
(status counters, replayable event stream), cancel it, and keep its
artifacts in a results directory that doubles as a resume cache.

- :class:`JobManager` / :class:`JobHandle` / :class:`JobStatus` —
  the in-process lifecycle (:mod:`repro.service.jobs`);
- :class:`ArtifactStore` — schema-contract JSON persistence + resume
  (:mod:`repro.service.artifacts`);
- :class:`ReproService` / :func:`run_server` — the stdlib-asyncio HTTP
  front end (:mod:`repro.service.http`), ``repro serve`` on the CLI.

Quick taste::

    from repro.api import SweepRequest
    from repro.service import JobManager

    manager = JobManager(workers=4)
    handle = manager.submit(SweepRequest(what="channel-width",
                                         values=(6, 8, 10)))
    print(handle.status().rows_total)       # 3, before any work ran
    for event in handle.events():
        print(event)                        # rows as they complete
    result = handle.result()                # the typed SweepResult
"""

from repro.service.artifacts import ArtifactStore
from repro.service.http import ReproService, run_server
from repro.service.metrics import render_prometheus
from repro.service.jobs import (
    CANCELLED,
    DONE,
    EXECUTORS,
    FAILED,
    JobHandle,
    JobManager,
    JobStatus,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
)

__all__ = [
    "ArtifactStore",
    "CANCELLED",
    "DONE",
    "EXECUTORS",
    "FAILED",
    "JobHandle",
    "JobManager",
    "JobStatus",
    "QUEUED",
    "RUNNING",
    "ReproService",
    "TERMINAL_STATES",
    "render_prometheus",
    "run_server",
]
