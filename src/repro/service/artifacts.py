"""Artifact persistence for the job layer: one results dir, one contract.

An :class:`ArtifactStore` owns a results directory and persists every
finished stage of every job as plain JSON **under the api's versioned
schema contract** — a stored artifact is exactly
``result.to_dict()``, so anything that can read the api's payloads can
read the store, and ``result_from_dict`` restores the typed object.

Layout (everything addressable through ``GET /v1/artifacts/...``)::

    results/
      specs/<spec-name>/
        manifest.json          # spec document + per-stage index
        00-map.json            # one file per completed stage, by name
        01-sweep.json
      requests/
        manifest.json          # request payload index
        map_request-1a2b3c4d.json

Resume contract: a stage artifact is reused only when its recorded
*stage key* — a hash of the stage's fully-resolved request payload
(which captures the spec header's workload/arch/execution inheritance)
— matches the resubmitted spec, and the stored payload still
deserializes under the schema contract.  A missing or stale artifact
is silently recomputed; a *corrupted* one (unreadable JSON, schema
violation) raises :class:`~repro.errors.SpecError` naming the file —
silently recomputing would hide data loss in the results dir.
``report`` stages are always recomputed: they summarize whatever the
other stages produced, and cost nothing.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
from pathlib import Path

from repro.api.results import result_from_dict
from repro.api.serialize import SCHEMA_VERSION, check, stamp
from repro.errors import JobError, JobNotFound, RequestError, SpecError

_SAFE_RE = re.compile(r"[^A-Za-z0-9._-]+")


def _safe_name(name: str) -> str:
    """A filesystem-safe directory name for ``name``.

    Unsafe characters collapse to ``_``; when anything was rewritten,
    a short hash of the original keeps distinct names distinct (grid
    children like ``demo[adder.g5w7]`` and ``demo[crc.g5w7]`` must not
    share a directory).
    """
    safe = _SAFE_RE.sub("_", name).strip("._") or "spec"
    if safe != name:
        safe += "-" + hashlib.sha256(name.encode()).hexdigest()[:8]
    return safe


def _payload_key(payload) -> str:
    """Stable content hash of a JSON-serializable payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ArtifactStore:
    """Persists job results as schema-contract JSON under one root."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # manifests are read-modify-write; concurrent job workers
        # serialize through the store lock
        self._lock = threading.RLock()

    # -- paths -------------------------------------------------------------- #
    def path_for(self, relpath: str) -> Path:
        """The absolute path for a store-relative one; rejects escapes."""
        path = (self.root / relpath).resolve()
        root = self.root.resolve()
        if root != path and root not in path.parents:
            raise JobError(f"artifact path {relpath!r} escapes the results dir")
        return path

    def exists(self, relpath: str) -> bool:
        return self.path_for(relpath).is_file()

    def read_bytes(self, relpath: str) -> bytes:
        path = self.path_for(relpath)
        if not path.is_file():
            raise JobNotFound(f"no artifact at {relpath!r}")
        return path.read_bytes()

    def _write_json(self, relpath: str, payload: dict) -> str:
        path = self.path_for(relpath)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
        os.replace(tmp, path)  # atomic: readers never see partial JSON
        return relpath

    def _read_json(self, relpath: str):
        return json.loads(self.read_bytes(relpath))

    # -- spec runs ----------------------------------------------------------- #
    def spec_reldir(self, spec) -> str:
        return f"specs/{_safe_name(spec.name)}"

    def _manifest_relpath(self, spec) -> str:
        return f"{self.spec_reldir(spec)}/manifest.json"

    def load_manifest(self, spec) -> "dict | None":
        """The spec's manifest, or ``None`` when no run was recorded."""
        relpath = self._manifest_relpath(spec)
        if not self.exists(relpath):
            return None
        try:
            manifest = self._read_json(relpath)
            check(manifest, "artifact_manifest")
        except (json.JSONDecodeError, OSError, RequestError) as exc:
            raise SpecError(
                f"corrupted manifest {self.path_for(relpath)}: {exc} — "
                f"delete it (or the spec's results dir) to start fresh, "
                f"or resubmit without resume"
            ) from exc
        return manifest

    def stage_key(self, spec, stage: dict, request) -> str:
        """Content key one stage resumes under.

        Hashes the stage's *resolved* request payload (header
        inheritance applied), so editing the spec header or the stage
        options invalidates exactly the stages whose work changed.
        """
        return _payload_key({
            "stage": stage.get("stage"),
            "request": None if request is None else request.to_dict(),
        })

    def _stage_relpath(self, spec, index: int, name: str) -> str:
        return f"{self.spec_reldir(spec)}/{index:02d}-{_safe_name(name)}.json"

    def save_stage(self, spec, index: int, name: str, kind: str,
                   result) -> str:
        """Persist one completed stage; returns the artifact relpath."""
        stage = spec.stages[index]
        relpath = self._stage_relpath(spec, index, name)
        self._write_json(relpath, result.to_dict())
        with self._lock:
            manifest = self.load_manifest(spec) or stamp(
                "artifact_manifest",
                {"spec_name": spec.name, "spec": spec.to_dict(),
                 "stages": {}},
            )
            manifest["spec"] = spec.to_dict()
            manifest["stages"][str(index)] = {
                "index": index,
                "name": name,
                "kind": kind,
                "key": self.stage_key(spec, stage,
                                      spec.request_for(stage)),
                "path": relpath,
                "status": "done",
            }
            self._write_json(self._manifest_relpath(spec), manifest)
        return relpath

    def completed_stages(self, spec) -> dict:
        """Stage index -> restored typed result, for every stage of
        ``spec`` whose artifact is present, key-matched and valid.

        This is what resume feeds to
        :meth:`repro.api.Session.iter_spec_events` as ``completed``.
        Missing/stale artifacts are simply absent (those stages
        recompute); corrupted ones raise :class:`SpecError`.
        """
        manifest = self.load_manifest(spec)
        if manifest is None:
            return {}
        completed: dict = {}
        names = spec.stage_names()
        for index, stage in enumerate(spec.stages):
            kind = stage.get("stage")
            if kind == "report":
                continue  # reports always recompute (they summarize)
            entry = manifest.get("stages", {}).get(str(index))
            if not entry or entry.get("status") != "done":
                continue
            key = self.stage_key(spec, stage, spec.request_for(stage))
            if entry.get("key") != key or entry.get("kind") != kind:
                continue  # stale: the stage's work changed, recompute
            relpath = entry.get("path") or \
                self._stage_relpath(spec, index, names[index])
            if not self.exists(relpath):
                continue
            try:
                completed[index] = result_from_dict(self._read_json(relpath))
            except Exception as exc:
                # unreadable JSON, schema violation, malformed payload:
                # never silently recompute over a damaged results dir
                raise SpecError(
                    f"corrupted artifact {self.path_for(relpath)} for "
                    f"stage {names[index]!r} of spec {spec.name!r}: {exc} "
                    f"— delete the file to recompute that stage, or "
                    f"resubmit without resume"
                ) from exc
        return completed

    # -- bare request jobs --------------------------------------------------- #
    def request_relpath(self, request) -> str:
        payload = request.to_dict()
        return f"requests/{payload['type']}-{_payload_key(payload)}.json"

    def save_request_result(self, request, result) -> str:
        """Persist a bare request job's result; returns the relpath."""
        relpath = self.request_relpath(request)
        self._write_json(relpath, result.to_dict())
        with self._lock:
            manifest_rel = "requests/manifest.json"
            if self.exists(manifest_rel):
                manifest = self._read_json(manifest_rel)
            else:
                manifest = stamp("artifact_manifest",
                                 {"spec_name": None, "requests": {}})
            manifest.setdefault("requests", {})[relpath] = {
                "request": request.to_dict(),
                "path": relpath,
                "status": "done",
            }
            self._write_json(manifest_rel, manifest)
        return relpath

    def load_request_result(self, request):
        """The stored result for ``request``, or ``None``; corrupted
        payloads raise :class:`SpecError` (same contract as stages)."""
        relpath = self.request_relpath(request)
        if not self.exists(relpath):
            return None
        try:
            return result_from_dict(self._read_json(relpath))
        except Exception as exc:
            raise SpecError(
                f"corrupted artifact {self.path_for(relpath)} for request "
                f"{request.TYPE_TAG}: {exc} — delete the file to "
                f"recompute, or resubmit without resume"
            ) from exc


#: Schema version artifacts are written under (the api contract's).
ARTIFACT_SCHEMA_VERSION = SCHEMA_VERSION
