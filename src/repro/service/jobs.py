"""Job-oriented execution: submit, observe, cancel, keep the artifacts.

The blocking facade (`Session.run`) answers "run this and wait"; this
module answers the serving-layer question — "run this *for me*, tell
me how it's going, let me walk away".  A :class:`JobManager` accepts
any typed api request or an :class:`~repro.api.ExperimentSpec`
(object or JSON payload) and returns a :class:`JobHandle`:

- :meth:`JobHandle.status` — queued/running/done/failed/cancelled plus
  progress counters (rows done / rows total, current stage), known
  up front from the request itself (`request_total_rows`);
- :meth:`JobHandle.events` — the job's event log as an iterator:
  replayed from the start, then live; one ``row`` event per streamed
  row carrying exactly the payload ``Session.stream`` yields, so a
  drained event stream is bit-identical to the blocking result;
- :meth:`JobHandle.result` — block for the typed result;
- :meth:`JobHandle.cancel` — stop between rows.

Admission goes through a :class:`~repro.fleet.Scheduler` — a priority
queue (per-submission ``priority``, FIFO within class) with
per-client quotas and a bounded depth — instead of a bare thread-pool
hand-off.  Execution is pluggable via ``executor``:

- ``"thread"`` (default): dispatcher threads run jobs on the one
  shared :class:`Session`, so concurrent jobs share every expensive
  cached artifact (compiled substrates, placements, golden mappings);
- ``"process"``: each job runs in a fresh worker process that streams
  the same wire events a remote fleet worker would POST, applied by
  the same commit path — process rows are bit-identical to thread
  rows by construction;
- ``"external"``: no local execution at all; jobs wait for remote
  ``repro worker`` processes to pull them via :meth:`lease_job` /
  :meth:`apply_worker_events` (the HTTP fleet endpoints).

Leases make remote execution crash-safe: a worker that stops posting
events misses its TTL, the lease expires, and the job requeues with a
bounded retry budget.  With an artifact ``store`` attached the
manager also journals every top-level submission and state transition
(:class:`~repro.fleet.Journal`), so :meth:`recover` on a restarted
coordinator resubmits whatever was in flight — with ``resume=True``,
replaying finished stages from the store instead of recomputing.

Grid specs (:attr:`ExperimentSpec.is_grid`) fan out into one child
job per cell under a parent handle that aggregates progress and
results.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import threading
import time
import traceback as _tb
from dataclasses import dataclass

import repro.errors as _errors_mod
from repro.api import ExperimentSpec, Session, request_from_dict
from repro.api.requests import (
    AreaRequest,
    BatchRequest,
    ImportRequest,
    MapRequest,
    ReorderRequest,
    SweepRequest,
    YieldRequest,
    request_total_rows,
)
from repro.api.results import SpecResult, result_from_dict
from repro.api.serialize import stamp
from repro.api.session import stage_rows
from repro.errors import JobCancelled, JobError, JobNotFound, ReproError
from repro.fleet.journal import JOURNAL_NAME, Journal, pending_submissions
from repro.fleet.leases import LeaseTable
from repro.fleet.scheduler import Scheduler
from repro.fleet.worker import process_job_main
from repro.utils.telemetry import GLOBAL

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Supported execution backends for locally-dispatched jobs.
EXECUTORS = ("thread", "process", "external")

#: The stage kind each bare request type folds as (mirrors the spec
#: stage vocabulary, so one fold path serves both job flavours).
_REQUEST_STAGE_KINDS = {
    MapRequest: "map",
    BatchRequest: "batch",
    SweepRequest: "sweep",
    YieldRequest: "yield",
    AreaRequest: "area",
    ReorderRequest: "reorder",
    ImportRequest: "import",
}


class _CancelJob(Exception):
    """Internal: the worker noticed the job's cancel flag."""


def _format_traceback(exc: BaseException) -> str:
    return "".join(_tb.format_exception(type(exc), exc, exc.__traceback__))


def _restore_error(event: dict) -> BaseException:
    """A typed exception for a worker-reported ``error`` event.

    Re-raises under the library's own class — or a plain builtin
    ``Exception`` subclass — when the worker named one, so
    ``handle.result()`` raises what a thread-executed job would have;
    anything unrecognized comes back as :class:`JobError`.
    """
    message = str(event.get("error") or "worker reported a failure")
    name = event.get("error_type")
    cls = getattr(_errors_mod, name, None) if isinstance(name, str) \
        else None
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = getattr(builtins, name, None) if isinstance(name, str) \
            else None
        if not (isinstance(cls, type) and issubclass(cls, Exception)):
            cls = JobError
    return cls(message)


@dataclass(frozen=True)
class JobStatus:
    """One observable snapshot of a job."""

    job_id: str
    kind: str                      # "request" | "spec" | "grid"
    name: str                      # request type tag or spec name
    state: str
    rows_done: int
    rows_total: int
    stage: "str | None" = None     # current/last stage name
    error: "str | None" = None
    error_type: "str | None" = None    # exception class name
    traceback: "str | None" = None     # formatted traceback text
    children: tuple = ()           # child job ids (grid parents only)
    priority: int = 0
    retries: int = 0               # lease-expiry requeues so far

    def to_dict(self) -> dict:
        return stamp("job_status", {
            "job_id": self.job_id,
            "kind": self.kind,
            "name": self.name,
            "state": self.state,
            "rows_done": self.rows_done,
            "rows_total": self.rows_total,
            "stage": self.stage,
            "error": self.error,
            "error_type": self.error_type,
            "traceback": self.traceback,
            "children": list(self.children),
            "priority": self.priority,
            "retries": self.retries,
        })


class _Job:
    """Internal mutable job record (guarded by its condition)."""

    def __init__(self, job_id: str, kind: str, name: str, payload,
                 resume: bool, rows_total: int,
                 parent: "_Job | None" = None, priority: int = 0,
                 client: "str | None" = None) -> None:
        self.job_id = job_id
        self.kind = kind
        self.name = name
        self.payload = payload
        self.resume = resume
        self.rows_total = rows_total
        self.parent = parent
        self.priority = priority
        self.client = client
        self.children: list[_Job] = []
        self.cond = threading.Condition()
        self.state = QUEUED
        self.rows_done = 0
        self.stage: str | None = None
        self.result = None
        self.error: BaseException | None = None
        self.events: list[dict] = []
        self.cancel_event = threading.Event()
        self.retries = 0
        self.lease = None
        self.submitted_at = time.perf_counter()
        self.finished_at: float | None = None


class JobHandle:
    """The caller's view of one submitted job."""

    def __init__(self, manager: "JobManager", job: _Job) -> None:
        self._manager = manager
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.job_id

    def status(self) -> JobStatus:
        """A snapshot of the job's state and progress counters."""
        return self._manager._status_of(self._job)

    def cancel(self) -> bool:
        """Ask the job to stop; ``True`` if it was still cancellable."""
        # straight to the record: a handle outlives the manager's
        # retention window, and its job may be pruned from the table
        return self._manager._cancel_job(self._job)

    def wait(self, timeout: "float | None" = None) -> JobStatus:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        job = self._job
        with job.cond:
            job.cond.wait_for(lambda: job.state in TERMINAL_STATES,
                              timeout=timeout)
        return self.status()

    def result(self, timeout: "float | None" = None):
        """The job's typed result; raises what the job raised.

        :class:`~repro.errors.JobCancelled` for a cancelled job,
        :class:`~repro.errors.JobError` on timeout, the job's own
        exception for a failed one.
        """
        job = self._job
        with job.cond:
            if not job.cond.wait_for(
                lambda: job.state in TERMINAL_STATES, timeout=timeout
            ):
                raise JobError(
                    f"job {job.job_id} still {job.state} after {timeout}s"
                )
            if job.state == CANCELLED:
                raise JobCancelled(f"job {job.job_id} was cancelled")
            if job.state == FAILED:
                raise job.error
            return job.result

    def events(self, timeout: "float | None" = None):
        """Iterate the job's event log: full replay, then live.

        Yields every event from sequence 0 and keeps following until
        the job's terminal ``done`` event — so a late subscriber sees
        exactly what an early one did.  ``timeout`` bounds the wait
        *between* events (:class:`~repro.errors.JobError` on expiry),
        not the total stream duration.
        """
        job = self._job
        seq = 0
        while True:
            with job.cond:
                if not job.cond.wait_for(
                    lambda: len(job.events) > seq
                    or job.state in TERMINAL_STATES,
                    timeout=timeout,
                ):
                    raise JobError(
                        f"no event from job {job.job_id} within {timeout}s"
                    )
                batch = job.events[seq:]
                seq = len(job.events)
                # the terminal event is appended atomically with the
                # state flip, so terminal + drained means the `done`
                # event is in `batch` (or already yielded)
                finished = job.state in TERMINAL_STATES and \
                    seq == len(job.events)
            yield from batch
            if finished:
                return


class JobManager:
    """Scheduled execution of api requests and specs as jobs.

    ``workers`` bounds local concurrency (dispatcher threads pulling
    from the scheduler); ``executor`` picks how dispatched jobs run
    (``"thread"`` on the shared ``session``, ``"process"`` in a fresh
    process per job, ``"external"`` not at all — remote workers lease
    them instead).  ``store`` (an
    :class:`~repro.service.artifacts.ArtifactStore`) enables artifact
    persistence, ``resume=True`` and — unless ``journal=False`` —
    the crash journal behind :meth:`recover`.  ``max_queue``,
    ``quotas`` and per-submission ``priority`` are scheduler policy;
    ``lease_ttl``/``max_retries`` govern fleet leases.
    """

    def __init__(self, session: "Session | None" = None, workers: int = 2,
                 store=None, retain: int = 512, executor: str = "thread",
                 lease_ttl: float = 30.0, max_retries: int = 3,
                 max_queue: int = 1024,
                 quotas: "dict[str, int] | None" = None,
                 journal: bool = True) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise JobError(f"workers must be a positive int, got {workers!r}")
        if not isinstance(retain, int) or retain < 1:
            raise JobError(f"retain must be a positive int, got {retain!r}")
        if executor not in EXECUTORS:
            raise JobError(f"executor must be one of {EXECUTORS}, "
                           f"got {executor!r}")
        if not (isinstance(lease_ttl, (int, float)) and lease_ttl > 0):
            raise JobError(f"lease_ttl must be positive, got {lease_ttl!r}")
        if not isinstance(max_retries, int) or max_retries < 0:
            raise JobError(
                f"max_retries must be a non-negative int, got {max_retries!r}"
            )
        self.session = session if session is not None else Session()
        self.store = store
        self.workers = workers
        self.executor = executor
        self.lease_ttl = float(lease_ttl)
        self.max_retries = max_retries
        #: terminal jobs kept in the table (a long-lived server must
        #: not hold every finished job's event log forever); the
        #: oldest-*finished* jobs are pruned past this count.
        self.retain = retain
        self._scheduler = Scheduler(max_queue=max_queue, quotas=quotas)
        self._leases = LeaseTable()
        self._journal: "Journal | None" = None
        if store is not None and journal:
            self._journal = Journal(store.root / JOURNAL_NAME)
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._stop = threading.Event()
        self._monitor: "threading.Thread | None" = None
        self._dispatchers: list[threading.Thread] = []
        if executor != "external":
            for i in range(workers):
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-job-{i}", daemon=True,
                )
                thread.start()
                self._dispatchers.append(thread)

    # -- scheduler passthroughs ---------------------------------------------- #
    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def leases(self) -> LeaseTable:
        return self._leases

    @property
    def journal(self) -> "Journal | None":
        return self._journal

    def queue_depth(self) -> int:
        return self._scheduler.depth()

    # -- submission ---------------------------------------------------------- #
    def submit(self, task, *, resume: bool = False, priority: int = 0,
               client: "str | None" = None,
               _job_id: "str | None" = None) -> JobHandle:
        """Submit a request or spec for execution; returns its handle.

        ``task`` may be a typed request, an :class:`ExperimentSpec`,
        or either one's JSON payload (dispatched on the ``type`` tag /
        a ``stages`` key — what the HTTP layer posts).  Grid specs fan
        out into one child job per cell under an aggregating parent
        handle.  ``resume=True`` requires the manager's artifact store
        and replays already-completed stages from it.

        ``priority`` orders dispatch (higher first, FIFO within a
        class); ``client`` attributes the job for quota accounting.
        Raises :class:`~repro.errors.QueueFull` /
        :class:`~repro.errors.QuotaExceeded` when the scheduler
        refuses admission.
        """
        task = self._coerce(task)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise JobError(f"priority must be an int, got {priority!r}")
        if resume and self.store is None:
            raise JobError(
                "resume needs an artifact store: construct the "
                "JobManager with store=ArtifactStore(results_dir)"
            )
        with self._lock:
            if self._closed:
                raise JobError("manager is shut down")
        if isinstance(task, ExperimentSpec) and task.is_grid:
            return self._submit_grid(task, resume, priority, client,
                                     _job_id)
        return self._submit_one(task, resume, parent=None,
                                priority=priority, client=client,
                                job_id=_job_id)

    @staticmethod
    def _coerce(task):
        if isinstance(task, dict):
            if task.get("type") == "experiment_spec" or "stages" in task:
                return ExperimentSpec.from_dict(task)
            return request_from_dict(task)
        return task

    def _new_id(self, job_id: "str | None" = None) -> str:
        return job_id if job_id is not None else f"job-{next(self._ids)}"

    def _register(self, job: _Job) -> None:
        with self._lock:
            self._jobs[job.job_id] = job
            retained = len(self._jobs)
        GLOBAL.inc("jobs.submitted", kind=job.kind)
        GLOBAL.gauge_add("jobs.queue_depth", 1)
        GLOBAL.gauge_set("jobs.retained", retained)
        self._journal_submit(job)

    def _create_job(self, task, resume: bool, parent: "_Job | None",
                    priority: int = 0, client: "str | None" = None,
                    job_id: "str | None" = None) -> _Job:
        if isinstance(task, ExperimentSpec):
            kind, name, total = "spec", task.name, task.total_rows()
        else:
            stage_kind = _REQUEST_STAGE_KINDS.get(type(task))
            if stage_kind is None:
                raise JobError(
                    f"unsupported task type {type(task).__name__}"
                )
            kind, name, total = "request", task.TYPE_TAG, \
                request_total_rows(task)
        job = _Job(self._new_id(job_id), kind, name, task, resume, total,
                   parent=parent, priority=priority, client=client)
        if parent is not None:
            parent.children.append(job)
        return job

    def _admit(self, job: _Job, *, force: bool) -> None:
        """Emit ``queued``, push to the scheduler, register.

        The status event precedes the push so a dispatcher that grabs
        the job instantly still logs ``queued`` before ``running``;
        on a scheduler refusal (:class:`~repro.errors.QueueFull`) the
        quota charge is returned and nothing was registered.
        """
        self._emit(job, {"event": "status", "state": QUEUED})
        try:
            self._scheduler.push(job, priority=job.priority, force=force)
        except JobError:
            self._scheduler.release(job.client)
            raise
        self._register(job)

    def _submit_one(self, task, resume: bool, parent: "_Job | None",
                    priority: int = 0, client: "str | None" = None,
                    job_id: "str | None" = None) -> JobHandle:
        job = self._create_job(task, resume, parent, priority, client,
                               job_id)
        if parent is None:
            self._scheduler.charge(client)
            self._admit(job, force=False)
        else:
            # a grid child was admitted with its parent: capacity and
            # quota were the parent's to pay
            self._admit(job, force=True)
        return JobHandle(self, job)

    def _submit_grid(self, spec: ExperimentSpec, resume: bool,
                     priority: int = 0, client: "str | None" = None,
                     job_id: "str | None" = None) -> JobHandle:
        children = spec.expand()
        self._scheduler.charge(client)
        parent = _Job(self._new_id(job_id), "grid", spec.name, spec,
                      resume, sum(c.total_rows() for c in children),
                      priority=priority, client=client)
        self._emit(parent, {"event": "status", "state": QUEUED})
        self._register(parent)
        with parent.cond:
            parent.state = RUNNING
        GLOBAL.gauge_add("jobs.queue_depth", -1)
        GLOBAL.gauge_add("jobs.running", 1)
        self._emit(parent, {"event": "status", "state": RUNNING})
        self._journal_state(parent, RUNNING)
        # every child record joins parent.children *before* any child
        # is pushed: a fast first child finishing mid-submission must
        # not let _maybe_finish_grid conclude the whole grid is done
        jobs = [self._create_job(child_spec, resume, parent,
                                 priority=priority)
                for child_spec in children]
        for job in jobs:
            self._admit(job, force=True)
        return JobHandle(self, parent)

    # -- journal ------------------------------------------------------------- #
    def _journal_append(self, record: dict) -> None:
        if self._journal is None:
            return
        try:
            self._journal.append(record)
        except OSError:
            pass  # a full disk must not take the coordinator down

    def _journal_submit(self, job: _Job) -> None:
        if job.parent is not None:  # children replay via their parent
            return
        self._journal_append({
            "event": "submit", "job_id": job.job_id,
            "kind": job.kind, "name": job.name,
            "task": job.payload.to_dict(),
            "priority": job.priority, "client": job.client,
            "resume": job.resume,
        })

    def _journal_state(self, job: _Job, state: str) -> None:
        if job.parent is not None:
            return
        self._journal_append({"event": "state", "job_id": job.job_id,
                              "state": state})

    def recover(self) -> "list[JobHandle]":
        """Resubmit every journaled job that never went terminal.

        The crash-restart half of the journal: replays the results
        dir's ``journal.ndjson``, fast-forwards the id counter past
        everything ever issued, and resubmits pending top-level jobs
        under their original ids with ``resume=True`` — so finished
        stages come back from the :class:`ArtifactStore` instead of
        recomputing.  Returns the recovered handles (empty without a
        journal).  Never called implicitly: a fresh manager over an
        old results dir stays inert until the server entry point asks.
        """
        if self._journal is None:
            return []
        next_id, pending = pending_submissions(self._journal.replay())
        with self._lock:
            self._ids = itertools.count(next_id)
        handles = []
        for record in pending:
            task = record.get("task")
            if not isinstance(task, dict):
                continue
            try:
                handles.append(self.submit(
                    task, resume=self.store is not None,
                    priority=int(record.get("priority") or 0),
                    _job_id=record.get("job_id"),
                ))
            except ReproError:
                continue  # a malformed journal entry loses one job,
                #           not the restart
        if handles:
            GLOBAL.inc("fleet.jobs.recovered", value=len(handles))
        return handles

    # -- observation --------------------------------------------------------- #
    def handle(self, job_id: str) -> JobHandle:
        """The handle for a known job id (:class:`JobNotFound`
        otherwise — including jobs already pruned by ``retain``)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"unknown job id {job_id!r}")
        return JobHandle(self, job)

    def jobs(self, state: "str | None" = None,
             limit: "int | None" = None) -> "list[JobStatus]":
        """Status snapshots in submission order.

        ``state`` filters to one lifecycle state; ``limit`` keeps only
        the *newest* that many snapshots (after filtering) — the
        fleet-scale listing contract behind ``GET /v1/jobs``.
        """
        if state is not None and state not in (QUEUED, RUNNING,
                                               *TERMINAL_STATES):
            raise JobError(
                f"unknown state filter {state!r} (expected one of "
                f"queued/running/done/failed/cancelled)"
            )
        if limit is not None and (not isinstance(limit, int) or limit < 1):
            raise JobError(f"limit must be a positive int, got {limit!r}")
        with self._lock:
            records = list(self._jobs.values())
        snaps = [self._status_of(job) for job in records]
        if state is not None:
            snaps = [s for s in snaps if s.state == state]
        if limit is not None:
            snaps = snaps[-limit:]
        return snaps

    def result_payload(self, job_id: str) -> dict:
        """A terminal job's result as a JSON payload (``GET
        /v1/jobs/{id}/result``): the typed result's ``to_dict`` (a
        list of them for a grid parent), or the error fields for a
        failed/cancelled job.  :class:`JobError` while the job is
        still live."""
        job = self.handle(job_id)._job
        with job.cond:
            state = job.state
            result = job.result
            error = job.error
        if state not in TERMINAL_STATES:
            raise JobError(
                f"job {job_id} is still {state}; its result is not ready"
            )
        payload = None
        if result is not None:
            payload = [r.to_dict() for r in result] \
                if isinstance(result, tuple) else result.to_dict()
        return {
            "job_id": job_id,
            "state": state,
            "result": payload,
            "error": str(error) if error is not None else None,
            "error_type": type(error).__name__
            if error is not None else None,
        }

    def _status_of(self, job: _Job) -> JobStatus:
        with job.cond:
            return JobStatus(
                job_id=job.job_id,
                kind=job.kind,
                name=job.name,
                state=job.state,
                rows_done=job.rows_done,
                rows_total=job.rows_total,
                stage=job.stage,
                error=str(job.error) if job.error is not None else None,
                error_type=type(job.error).__name__
                if job.error is not None else None,
                traceback=_format_traceback(job.error)
                if job.error is not None else None,
                children=tuple(c.job_id for c in job.children),
                priority=job.priority,
                retries=job.retries,
            )

    # -- cancellation -------------------------------------------------------- #
    def cancel(self, job_id: str) -> bool:
        """Cancel a job (and, for a grid parent, all its children).

        ``True`` when the job was still live: a queued job is
        cancelled before it starts, a locally-running one stops at its
        next row boundary, a leased one is finished immediately (the
        worker learns on its next event post and abandons).
        """
        return self._cancel_job(self.handle(job_id)._job)

    def _cancel_job(self, job: _Job) -> bool:
        with job.cond:
            if job.state in TERMINAL_STATES:
                return False
        job.cancel_event.set()
        # cancel children through the records the parent already holds
        # — a finished child may have been pruned from the job table
        for child in list(job.children):
            self._cancel_job(child)
        if self._scheduler.remove(job):
            # still queued: it will never be popped; finish it ourselves
            self._finish(job, CANCELLED)
        elif job.kind == "grid":
            self._maybe_finish_grid(job)
        else:
            lease = job.lease
            if lease is not None and \
                    self._leases.release(lease.lease_id) is not None:
                # leased out: the worker discovers the cancellation on
                # its next post (410), we finish the record now
                GLOBAL.gauge_add("fleet.leases.active", -1)
                with job.cond:
                    job.lease = None
                self._finish(job, CANCELLED)
        return True

    # -- lifecycle plumbing -------------------------------------------------- #
    def _emit(self, job: _Job, event: dict) -> None:
        with job.cond:
            event = dict(event)
            event["job_id"] = job.job_id
            event["seq"] = len(job.events)
            job.events.append(event)
            job.cond.notify_all()
        parent = job.parent
        if parent is not None and event.get("event") != "status":
            forwarded = {k: v for k, v in event.items() if k != "seq"}
            if event.get("event") == "row":
                with parent.cond:
                    parent.rows_done += 1
                    parent.stage = f"{job.job_id}:{event.get('stage')}"
            self._emit_flat(parent, forwarded)

    def _emit_flat(self, job: _Job, event: dict) -> None:
        with job.cond:
            if job.state in TERMINAL_STATES:
                # the `done` event is contractually last — a sibling
                # racing in a forwarded event after the grid parent
                # finished must not extend the log
                return
            event = dict(event)
            event.setdefault("job_id", job.job_id)
            event["seq"] = len(job.events)
            job.events.append(event)
            job.cond.notify_all()

    def _finish(self, job: _Job, state: str, result=None,
                error: "BaseException | None" = None) -> None:
        with job.cond:
            if job.state in TERMINAL_STATES:
                return
            prev_state = job.state
            job.state = state
            job.result = result
            job.error = error
            job.finished_at = time.perf_counter()
            # the terminal event rides the same lock hold as the state
            # flip: observers never see a terminal state whose `done`
            # event is still in flight
            done = {
                "event": "done", "state": state,
                "error": str(error) if error is not None else None,
                "job_id": job.job_id, "seq": len(job.events),
            }
            if error is not None:
                done["error_type"] = type(error).__name__
                done["traceback"] = _format_traceback(error)
            job.events.append(done)
            job.cond.notify_all()
        GLOBAL.gauge_add("jobs.running" if prev_state == RUNNING
                         else "jobs.queue_depth", -1)
        GLOBAL.inc("jobs.finished", state=state)
        GLOBAL.observe("jobs.latency_seconds",
                       time.perf_counter() - job.submitted_at)
        self._journal_state(job, state)
        if job.parent is None:
            self._scheduler.release(job.client)
        parent = job.parent
        if parent is not None:
            self._emit_flat(parent, {"event": "child", "state": state,
                                     "job_id": job.job_id})
            self._maybe_finish_grid(parent)
        self._prune()

    def _prune(self) -> None:
        """Drop the oldest-*finished* jobs past ``retain`` from the
        table (their event logs go with them; live handles keep
        working, but :meth:`handle` lookups turn into
        :class:`JobNotFound`).  Exposes the table size as the
        ``jobs.retained`` gauge."""
        with self._lock:
            terminal = [(job.finished_at or 0.0, job_id)
                        for job_id, job in self._jobs.items()
                        if job.state in TERMINAL_STATES]
            excess = len(terminal) - self.retain
            if excess > 0:
                terminal.sort()
                for _, job_id in terminal[:excess]:
                    del self._jobs[job_id]
            GLOBAL.gauge_set("jobs.retained", len(self._jobs))

    def _maybe_finish_grid(self, parent: _Job) -> None:
        children = list(parent.children)
        states = []
        for child in children:
            with child.cond:
                states.append(child.state)
        if any(s not in TERMINAL_STATES for s in states):
            return
        if any(s == FAILED for s in states):
            errors = [c.error for c in children if c.error is not None]
            self._finish(parent, FAILED,
                         error=errors[0] if errors else
                         JobError("a grid child failed"))
        elif any(s == CANCELLED for s in states):
            self._finish(parent, CANCELLED)
        else:
            self._finish(parent, DONE,
                         result=tuple(c.result for c in children))

    def _row(self, job: _Job, stage: "str | None", item) -> None:
        self._commit_row(job, stage, item.to_dict())

    def _commit_row(self, job: _Job, stage: "str | None", data) -> None:
        with job.cond:
            if job.state in TERMINAL_STATES:
                return  # a stale post must not extend a finished log
            job.rows_done += 1
            job.stage = stage
        self._emit(job, {"event": "row", "stage": stage, "data": data})

    def _commit_stage(self, job: _Job, event: dict) -> None:
        """Apply a worker ``stage`` event (spec jobs): persist the
        stage result and emit the same artifact-bearing event a
        thread-executed job would have."""
        index = event.get("index")
        name = event.get("stage")
        out = {"event": "stage", "stage": name,
               "skipped": bool(event.get("skipped"))}
        if index is not None:
            out["index"] = index
        if self.store is not None and job.kind == "spec" and \
                isinstance(event.get("data"), dict) and index is not None:
            spec = job.payload
            kind = event.get("kind") or spec.stages[int(index)]["stage"]
            out["artifact"] = self.store.save_stage(
                spec, int(index), str(name), str(kind),
                result_from_dict(event["data"]),
            )
        self._emit(job, out)

    def _commit_done(self, job: _Job, event: dict):
        """Restore a worker ``done`` event's typed result; persist
        bare-request artifacts (and emit their stage event) exactly
        like the thread path."""
        payload = event.get("result")
        result = result_from_dict(payload) if isinstance(payload, dict) \
            else None
        if job.kind == "request" and result is not None and \
                self.store is not None:
            relpath = self.store.save_request_result(job.payload, result)
            stage_kind = job.name[:-len("_request")] \
                if job.name.endswith("_request") else job.name
            self._emit(job, {"event": "stage", "stage": stage_kind,
                             "skipped": bool(event.get("skipped")),
                             "artifact": relpath})
        return result

    def _check_cancel(self, job: _Job) -> None:
        if job.cancel_event.is_set():
            raise _CancelJob()

    # -- local dispatch ------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        """One local worker: pull from the scheduler, execute, repeat.

        On shutdown the loop drains whatever is already queued (the
        thread-pool contract `shutdown(wait=True)` used to provide)
        before exiting — unless those jobs were cancelled away.
        """
        while True:
            job = self._scheduler.pop(timeout=0.1)
            if job is not None:
                self._execute(job)
                continue
            if self._stop.is_set():
                return

    def _execute(self, job: _Job) -> None:
        if job.cancel_event.is_set():
            self._finish(job, CANCELLED)
            return
        with job.cond:
            job.state = RUNNING
        GLOBAL.gauge_add("jobs.queue_depth", -1)
        GLOBAL.gauge_add("jobs.running", 1)
        self._emit(job, {"event": "status", "state": RUNNING})
        self._journal_state(job, RUNNING)
        try:
            if self.executor == "process":
                result = self._run_process_job(job)
            elif job.kind == "spec":
                result = self._run_spec_job(job)
            else:
                result = self._run_request_job(job)
        except _CancelJob:
            self._finish(job, CANCELLED)
        except Exception as exc:  # reported via status/result, not lost
            self._emit(job, {"event": "error", "error": str(exc),
                             "error_type": type(exc).__name__,
                             "traceback": _format_traceback(exc)})
            self._finish(job, FAILED, error=exc)
        else:
            self._finish(job, DONE, result=result)

    def _run_request_job(self, job: _Job):
        request = job.payload
        stage_kind = _REQUEST_STAGE_KINDS[type(request)]
        if job.resume and self.store is not None:
            loaded = self.store.load_request_result(request)
            if loaded is not None:
                for item in stage_rows(loaded):
                    self._check_cancel(job)
                    self._row(job, stage_kind, item)
                self._emit(job, {"event": "stage", "stage": stage_kind,
                                 "skipped": True,
                                 "artifact":
                                     self.store.request_relpath(request)})
                return loaded
        rows = []
        stream = self.session.stream(request)
        try:
            for item in stream:
                self._check_cancel(job)
                rows.append(item)
                self._row(job, stage_kind, item)
            self._check_cancel(job)
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        result = self.session.fold_stage(stage_kind, request, rows)
        if self.store is not None:
            relpath = self.store.save_request_result(request, result)
            self._emit(job, {"event": "stage", "stage": stage_kind,
                             "skipped": False, "artifact": relpath})
        return result

    def _run_spec_job(self, job: _Job):
        spec = job.payload
        completed: dict = {}
        if (job.resume or job.retries) and self.store is not None:
            completed = self.store.completed_stages(spec)
        names = spec.stage_names()
        kinds = [s["stage"] for s in spec.stages]
        stage_results: list = []
        events = self.session.iter_spec_events(spec, completed=completed)
        try:
            for kind_tag, index, name, item in events:
                self._check_cancel(job)
                if kind_tag == "row":
                    self._row(job, name, item)
                    continue
                stage_results.append(item)
                skipped = index in completed
                if self.store is not None:
                    relpath = self.store.save_stage(
                        spec, index, name, kinds[index], item
                    )
                    self._emit(job, {"event": "stage", "stage": name,
                                     "index": index, "skipped": skipped,
                                     "artifact": relpath})
                else:
                    self._emit(job, {"event": "stage", "stage": name,
                                     "index": index, "skipped": skipped})
            self._check_cancel(job)
        finally:
            close = getattr(events, "close", None)
            if close is not None:
                close()
        return SpecResult(name=spec.name, workload=spec.workload,
                          stages=tuple(stage_results))

    # -- process executor ---------------------------------------------------- #
    def _run_process_job(self, job: _Job):
        """Run one job in a fresh worker process over the fleet's wire
        protocol: the child streams the same events a remote worker
        would POST, the parent commits them through the same path —
        held under a real lease, renewed while the child is alive."""
        lease = self._leases.grant(job, worker=f"process:{job.job_id}",
                                   ttl=self.lease_ttl)
        with job.cond:
            job.lease = lease
        GLOBAL.gauge_add("fleet.leases.active", 1)
        GLOBAL.inc("fleet.leases.granted", executor="process")
        payload = self._lease_payload(job, lease)
        ctx = multiprocessing.get_context()
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=process_job_main, args=(send, payload),
                           name=f"repro-fleet-{job.job_id}", daemon=True)
        proc.start()
        send.close()
        try:
            while True:
                self._check_cancel(job)
                with job.cond:
                    if job.lease is not lease:
                        # the lease was collected (expiry under a
                        # pathological stall, or a racing cancel) —
                        # the job belongs to someone else now; a stale
                        # commit must not corrupt it
                        raise _CancelJob()
                if recv.poll(0.1):
                    try:
                        event = recv.recv()
                    except EOFError as exc:
                        raise JobError(
                            f"worker process for {job.job_id} closed its "
                            f"pipe without a result"
                        ) from exc
                    kind = event.get("event")
                    if kind == "row":
                        self._commit_row(job, event.get("stage"),
                                         event.get("data"))
                    elif kind == "stage":
                        self._commit_stage(job, event)
                    elif kind == "done":
                        GLOBAL.inc("fleet.leases.completed",
                                   executor="process")
                        return self._commit_done(job, event)
                    elif kind == "error":
                        raise _restore_error(event)
                elif not proc.is_alive():
                    raise JobError(
                        f"worker process for {job.job_id} died "
                        f"(exit code {proc.exitcode})"
                    )
                try:
                    self._leases.renew(lease.lease_id)
                except JobError:
                    pass  # collected by a racing cancel; loop notices
        finally:
            if self._leases.release(lease.lease_id) is not None:
                GLOBAL.gauge_add("fleet.leases.active", -1)
            with job.cond:
                if job.lease is lease:  # a requeue may hold a new one
                    job.lease = None
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=10.0)
            recv.close()

    # -- fleet leasing ------------------------------------------------------- #
    def lease_job(self, worker: str = "", wait: float = 0.0,
                  ttl: "float | None" = None) -> "dict | None":
        """Grant the next runnable job to a pulling worker.

        The remote half of the scheduler: pops the highest-priority
        pending job (blocking up to ``wait`` seconds), grants a lease,
        flips the job to ``running`` and returns the lease document —
        task payload, lease id, TTL, and any resume material the
        artifact store holds.  ``None`` when nothing is pending (or
        the manager is draining/paused).
        """
        wait = max(0.0, min(float(wait), 60.0))
        deadline = time.monotonic() + wait
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            job = self._scheduler.pop(timeout=remaining)
            if job is None:
                return None
            if job.cancel_event.is_set():
                self._finish(job, CANCELLED)
                continue
            lease = self._leases.grant(job, worker,
                                       self.lease_ttl if ttl is None
                                       else ttl)
            with job.cond:
                job.state = RUNNING
                job.lease = lease
            GLOBAL.gauge_add("jobs.queue_depth", -1)
            GLOBAL.gauge_add("jobs.running", 1)
            GLOBAL.gauge_add("fleet.leases.active", 1)
            GLOBAL.inc("fleet.leases.granted", executor="remote")
            self._emit(job, {"event": "status", "state": RUNNING})
            self._journal_state(job, RUNNING)
            self._journal_append({"event": "lease", "job_id": job.job_id,
                                  "lease_id": lease.lease_id,
                                  "worker": worker})
            self._ensure_monitor()
            try:
                return self._lease_payload(job, lease)
            except Exception as exc:  # corrupted resume artifact etc.
                if self._leases.release(lease.lease_id) is not None:
                    GLOBAL.gauge_add("fleet.leases.active", -1)
                with job.cond:
                    job.lease = None
                self._emit(job, {"event": "error", "error": str(exc),
                                 "error_type": type(exc).__name__,
                                 "traceback": _format_traceback(exc)})
                self._finish(job, FAILED, error=exc)
                return None

    def _lease_payload(self, job: _Job, lease) -> dict:
        doc = {
            "lease_id": lease.lease_id,
            "job_id": job.job_id,
            "ttl": lease.ttl,
            "kind": job.kind,
            "name": job.name,
            "attempt": job.retries,
            "task": job.payload.to_dict(),
        }
        if self.store is None or not (job.resume or job.retries):
            return doc
        if job.kind == "spec":
            completed = self.store.completed_stages(job.payload)
            if completed:
                doc["resume_completed"] = {
                    str(index): result.to_dict()
                    for index, result in completed.items()
                }
        elif job.kind == "request":
            loaded = self.store.load_request_result(job.payload)
            if loaded is not None:
                doc["resume_result"] = loaded.to_dict()
        return doc

    def apply_worker_events(self, lease_id: str, events,
                            worker: str = "") -> dict:
        """Commit a worker's posted event batch against its lease.

        Every post renews the lease (heartbeats are just empty
        renewals).  Row/stage events land through the same commit path
        the process executor uses; ``done`` finishes the job with the
        restored typed result; ``error`` fails it under the worker's
        reported exception type.  Raises
        :class:`~repro.errors.LeaseExpired` for an unknown/expired
        lease (the HTTP 410) — a late worker's stale events must not
        corrupt a requeued job.  The response tells the worker whether
        to keep going (``cancelled``).
        """
        lease = self._leases.renew(lease_id)
        job = lease.job
        with job.cond:
            terminal = job.state in TERMINAL_STATES
        if terminal or job.cancel_event.is_set():
            # nothing more to commit; release so expiry never requeues
            if self._leases.release(lease_id) is not None:
                GLOBAL.gauge_add("fleet.leases.active", -1)
            with job.cond:
                job.lease = None
                state = job.state
            return {"ok": True, "cancelled": True, "state": state}
        if not isinstance(events, (list, tuple)):
            raise JobError("worker events payload must be a list")
        for event in events:
            if not isinstance(event, dict):
                continue
            kind = event.get("event")
            if kind == "heartbeat":
                continue
            if kind == "row":
                self._commit_row(job, event.get("stage"),
                                 event.get("data"))
            elif kind == "stage":
                self._commit_stage(job, event)
            elif kind == "done":
                result = self._commit_done(job, event)
                if self._leases.release(lease_id) is not None:
                    GLOBAL.gauge_add("fleet.leases.active", -1)
                GLOBAL.inc("fleet.leases.completed", executor="remote")
                with job.cond:
                    job.lease = None
                self._finish(job, DONE, result=result)
                break
            elif kind == "error":
                self._emit(job, {
                    "event": "error", "error": event.get("error"),
                    "error_type": event.get("error_type"),
                    "traceback": event.get("traceback"),
                })
                if self._leases.release(lease_id) is not None:
                    GLOBAL.gauge_add("fleet.leases.active", -1)
                with job.cond:
                    job.lease = None
                self._finish(job, FAILED, error=_restore_error(event))
                break
        with job.cond:
            state = job.state
        return {"ok": True, "cancelled": job.cancel_event.is_set(),
                "state": state}

    def _ensure_monitor(self) -> None:
        with self._lock:
            if self._monitor is not None or self._closed:
                return
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-lease-monitor",
                daemon=True,
            )
            self._monitor.start()

    def _monitor_loop(self) -> None:
        while not self._stop.wait(0.1):
            for lease in self._leases.expired():
                self._on_lease_expired(lease)

    def _on_lease_expired(self, lease) -> None:
        """Requeue (or fail) a job whose worker went quiet."""
        job = lease.job
        GLOBAL.gauge_add("fleet.leases.active", -1)
        GLOBAL.inc("fleet.leases.expired")
        with job.cond:
            if job.state in TERMINAL_STATES:
                return
            job.lease = None
            job.retries += 1
            retries = job.retries
        if retries > self.max_retries:
            self._finish(job, FAILED, error=JobError(
                f"lease {lease.lease_id} (worker {lease.worker!r}) "
                f"expired on attempt {retries}; retry budget of "
                f"{self.max_retries} exhausted"
            ))
            return
        with job.cond:
            job.state = QUEUED
            job.rows_done = 0
            job.stage = None
        GLOBAL.gauge_add("jobs.running", -1)
        GLOBAL.gauge_add("jobs.queue_depth", 1)
        GLOBAL.inc("fleet.jobs.requeued")
        self._emit(job, {"event": "requeued", "attempt": retries,
                         "reason": f"lease {lease.lease_id} expired"})
        self._emit(job, {"event": "status", "state": QUEUED})
        self._journal_state(job, QUEUED)
        # re-admission of already-accepted work bypasses the queue cap
        self._scheduler.push(job, priority=job.priority, force=True)

    # -- drain / teardown ---------------------------------------------------- #
    def live_jobs(self) -> "list[_Job]":
        """Top-level jobs not yet terminal (children ride parents)."""
        with self._lock:
            records = [job for job in self._jobs.values()
                       if job.parent is None]
        live = []
        for job in records:
            with job.cond:
                if job.state not in TERMINAL_STATES:
                    live.append(job)
        return live

    def drain(self, timeout: float = 10.0) -> "list[str]":
        """Stop handing out work and wait for running jobs to finish.

        Pauses the scheduler (local dispatchers and remote leases both
        stop pulling; queued jobs stay queued *and journaled*), then
        waits up to ``timeout`` seconds for in-flight jobs to go
        terminal.  Returns the ids of jobs still live at expiry — the
        abandoned work a graceful shutdown reports (and the journal
        records for the next start to recover).
        """
        self._scheduler.pause()
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            if not self.live_jobs():
                break
            time.sleep(0.05)
        abandoned = [job.job_id for job in self.live_jobs()]
        self._journal_append({"event": "shutdown",
                              "abandoned": abandoned})
        return abandoned

    def shutdown(self, wait: bool = True, cancel: bool = False) -> None:
        """Stop accepting jobs; optionally cancel everything live.

        ``wait=True`` lets dispatchers drain the already-admitted
        queue first (the thread-pool contract submissions were
        accepted under).  Also releases the session's shared-memory
        publications — the coordinator is the segments' owner, so a
        clean server exit must unlink them (workers that are still
        draining keep their own mappings alive until they exit).
        """
        with self._lock:
            self._closed = True
            jobs = list(self._jobs.values())
        if cancel:
            for job in jobs:
                self._cancel_job(job)
        self._stop.set()
        self._scheduler.wake()
        if wait:
            for thread in self._dispatchers:
                thread.join()
            if self._monitor is not None:
                self._monitor.join(timeout=5.0)
        self.session.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)
