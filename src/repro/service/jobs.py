"""Job-oriented execution: submit, observe, cancel, keep the artifacts.

The blocking facade (`Session.run`) answers "run this and wait"; this
module answers the serving-layer question — "run this *for me*, tell
me how it's going, let me walk away".  A :class:`JobManager` accepts
any typed api request or an :class:`~repro.api.ExperimentSpec`
(object or JSON payload) and returns a :class:`JobHandle`:

- :meth:`JobHandle.status` — queued/running/done/failed/cancelled plus
  progress counters (rows done / rows total, current stage), known
  up front from the request itself (`request_total_rows`);
- :meth:`JobHandle.events` — the job's event log as an iterator:
  replayed from the start, then live; one ``row`` event per streamed
  row carrying exactly the payload ``Session.stream`` yields, so a
  drained event stream is bit-identical to the blocking result;
- :meth:`JobHandle.result` — block for the typed result;
- :meth:`JobHandle.cancel` — stop between rows.  The worker closes the
  underlying stream generator, which the runners answer by abandoning
  their pools (``shutdown(wait=False, cancel_futures=True)``), so a
  cancelled sweep leaks no workers.

Jobs run on a bounded thread pool sharing **one** :class:`Session` —
every expensive artifact (compiled substrates, placements, golden
mappings, netlists) is shared across concurrent jobs, which is the
entire point of serving through a session instead of forking one per
request.  Grid specs (:attr:`ExperimentSpec.is_grid`) fan out into one
child job per cell under a parent handle that aggregates progress and
results.

With an :class:`~repro.service.artifacts.ArtifactStore` attached,
every finished stage is persisted as schema-contract JSON, and
``resume=True`` re-submissions *replay* completed stages from the
store instead of recomputing them (rows included, so streams stay
bit-identical across a resume).
"""

from __future__ import annotations

import itertools
import threading
import time
import traceback as _tb
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.api import ExperimentSpec, Session, request_from_dict
from repro.api.requests import (
    AreaRequest,
    BatchRequest,
    MapRequest,
    ReorderRequest,
    SweepRequest,
    YieldRequest,
    request_total_rows,
)
from repro.api.results import SpecResult
from repro.api.serialize import stamp
from repro.api.session import stage_rows
from repro.errors import JobCancelled, JobError, JobNotFound
from repro.utils.telemetry import GLOBAL

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: The stage kind each bare request type folds as (mirrors the spec
#: stage vocabulary, so one fold path serves both job flavours).
_REQUEST_STAGE_KINDS = {
    MapRequest: "map",
    BatchRequest: "batch",
    SweepRequest: "sweep",
    YieldRequest: "yield",
    AreaRequest: "area",
    ReorderRequest: "reorder",
}


class _CancelJob(Exception):
    """Internal: the worker noticed the job's cancel flag."""


def _format_traceback(exc: BaseException) -> str:
    return "".join(_tb.format_exception(type(exc), exc, exc.__traceback__))


@dataclass(frozen=True)
class JobStatus:
    """One observable snapshot of a job."""

    job_id: str
    kind: str                      # "request" | "spec" | "grid"
    name: str                      # request type tag or spec name
    state: str
    rows_done: int
    rows_total: int
    stage: "str | None" = None     # current/last stage name
    error: "str | None" = None
    error_type: "str | None" = None    # exception class name
    traceback: "str | None" = None     # formatted traceback text
    children: tuple = ()           # child job ids (grid parents only)

    def to_dict(self) -> dict:
        return stamp("job_status", {
            "job_id": self.job_id,
            "kind": self.kind,
            "name": self.name,
            "state": self.state,
            "rows_done": self.rows_done,
            "rows_total": self.rows_total,
            "stage": self.stage,
            "error": self.error,
            "error_type": self.error_type,
            "traceback": self.traceback,
            "children": list(self.children),
        })


class _Job:
    """Internal mutable job record (guarded by its condition)."""

    def __init__(self, job_id: str, kind: str, name: str, payload,
                 resume: bool, rows_total: int,
                 parent: "_Job | None" = None) -> None:
        self.job_id = job_id
        self.kind = kind
        self.name = name
        self.payload = payload
        self.resume = resume
        self.rows_total = rows_total
        self.parent = parent
        self.children: list[_Job] = []
        self.cond = threading.Condition()
        self.state = QUEUED
        self.rows_done = 0
        self.stage: str | None = None
        self.result = None
        self.error: BaseException | None = None
        self.events: list[dict] = []
        self.cancel_event = threading.Event()
        self.future = None
        self.submitted_at = time.perf_counter()


class JobHandle:
    """The caller's view of one submitted job."""

    def __init__(self, manager: "JobManager", job: _Job) -> None:
        self._manager = manager
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.job_id

    def status(self) -> JobStatus:
        """A snapshot of the job's state and progress counters."""
        return self._manager._status_of(self._job)

    def cancel(self) -> bool:
        """Ask the job to stop; ``True`` if it was still cancellable."""
        # straight to the record: a handle outlives the manager's
        # retention window, and its job may be pruned from the table
        return self._manager._cancel_job(self._job)

    def wait(self, timeout: "float | None" = None) -> JobStatus:
        """Block until the job is terminal (or ``timeout`` elapses)."""
        job = self._job
        with job.cond:
            job.cond.wait_for(lambda: job.state in TERMINAL_STATES,
                              timeout=timeout)
        return self.status()

    def result(self, timeout: "float | None" = None):
        """The job's typed result; raises what the job raised.

        :class:`~repro.errors.JobCancelled` for a cancelled job,
        :class:`~repro.errors.JobError` on timeout, the job's own
        exception for a failed one.
        """
        job = self._job
        with job.cond:
            if not job.cond.wait_for(
                lambda: job.state in TERMINAL_STATES, timeout=timeout
            ):
                raise JobError(
                    f"job {job.job_id} still {job.state} after {timeout}s"
                )
            if job.state == CANCELLED:
                raise JobCancelled(f"job {job.job_id} was cancelled")
            if job.state == FAILED:
                raise job.error
            return job.result

    def events(self, timeout: "float | None" = None):
        """Iterate the job's event log: full replay, then live.

        Yields every event from sequence 0 and keeps following until
        the job's terminal ``done`` event — so a late subscriber sees
        exactly what an early one did.  ``timeout`` bounds the wait
        *between* events (:class:`~repro.errors.JobError` on expiry),
        not the total stream duration.
        """
        job = self._job
        seq = 0
        while True:
            with job.cond:
                if not job.cond.wait_for(
                    lambda: len(job.events) > seq
                    or job.state in TERMINAL_STATES,
                    timeout=timeout,
                ):
                    raise JobError(
                        f"no event from job {job.job_id} within {timeout}s"
                    )
                batch = job.events[seq:]
                seq = len(job.events)
                # the terminal event is appended atomically with the
                # state flip, so terminal + drained means the `done`
                # event is in `batch` (or already yielded)
                finished = job.state in TERMINAL_STATES and \
                    seq == len(job.events)
            yield from batch
            if finished:
                return


class JobManager:
    """Bounded worker pool executing api requests and specs as jobs.

    ``workers`` bounds how many jobs run concurrently (further
    submissions queue); every job executes on the one shared
    ``session``, so concurrent jobs share its caches.  ``store``
    (an :class:`~repro.service.artifacts.ArtifactStore`) enables
    artifact persistence and ``resume=True``.
    """

    def __init__(self, session: "Session | None" = None, workers: int = 2,
                 store=None, retain: int = 512) -> None:
        if not isinstance(workers, int) or workers < 1:
            raise JobError(f"workers must be a positive int, got {workers!r}")
        if not isinstance(retain, int) or retain < 1:
            raise JobError(f"retain must be a positive int, got {retain!r}")
        self.session = session if session is not None else Session()
        self.store = store
        self.workers = workers
        #: terminal jobs kept in the table (a long-lived server must
        #: not hold every finished job's event log forever); the
        #: oldest finished jobs are pruned past this count.
        self.retain = retain
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._jobs: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    # -- submission ---------------------------------------------------------- #
    def submit(self, task, *, resume: bool = False) -> JobHandle:
        """Submit a request or spec for execution; returns its handle.

        ``task`` may be a typed request, an :class:`ExperimentSpec`,
        or either one's JSON payload (dispatched on the ``type`` tag /
        a ``stages`` key — what the HTTP layer posts).  Grid specs fan
        out into one child job per cell under an aggregating parent
        handle.  ``resume=True`` requires the manager's artifact store
        and replays already-completed stages from it.
        """
        task = self._coerce(task)
        if resume and self.store is None:
            raise JobError(
                "resume needs an artifact store: construct the "
                "JobManager with store=ArtifactStore(results_dir)"
            )
        with self._lock:
            if self._closed:
                raise JobError("manager is shut down")
        if isinstance(task, ExperimentSpec) and task.is_grid:
            return self._submit_grid(task, resume)
        return self._submit_one(task, resume, parent=None)

    @staticmethod
    def _coerce(task):
        if isinstance(task, dict):
            if task.get("type") == "experiment_spec" or "stages" in task:
                return ExperimentSpec.from_dict(task)
            return request_from_dict(task)
        return task

    def _new_id(self) -> str:
        return f"job-{next(self._ids)}"

    def _register(self, job: _Job) -> None:
        with self._lock:
            self._jobs[job.job_id] = job
        GLOBAL.inc("jobs.submitted", kind=job.kind)
        GLOBAL.gauge_add("jobs.queue_depth", 1)
        self._emit(job, {"event": "status", "state": QUEUED})

    def _create_job(self, task, resume: bool,
                    parent: "_Job | None") -> _Job:
        if isinstance(task, ExperimentSpec):
            kind, name, total = "spec", task.name, task.total_rows()
        else:
            stage_kind = _REQUEST_STAGE_KINDS.get(type(task))
            if stage_kind is None:
                raise JobError(
                    f"unsupported task type {type(task).__name__}"
                )
            kind, name, total = "request", task.TYPE_TAG, \
                request_total_rows(task)
        job = _Job(self._new_id(), kind, name, task, resume, total,
                   parent=parent)
        if parent is not None:
            parent.children.append(job)
        self._register(job)
        return job

    def _submit_one(self, task, resume: bool,
                    parent: "_Job | None") -> JobHandle:
        job = self._create_job(task, resume, parent)
        job.future = self._pool.submit(self._run_job, job)
        return JobHandle(self, job)

    def _submit_grid(self, spec: ExperimentSpec, resume: bool) -> JobHandle:
        children = spec.expand()
        parent = _Job(self._new_id(), "grid", spec.name, spec, resume,
                      sum(c.total_rows() for c in children))
        self._register(parent)
        with parent.cond:
            parent.state = RUNNING
        GLOBAL.gauge_add("jobs.queue_depth", -1)
        GLOBAL.gauge_add("jobs.running", 1)
        self._emit(parent, {"event": "status", "state": RUNNING})
        # every child record joins parent.children *before* any child
        # starts: a fast first child finishing mid-submission must not
        # let _maybe_finish_grid conclude the whole grid is done
        jobs = [self._create_job(child_spec, resume, parent)
                for child_spec in children]
        for job in jobs:
            job.future = self._pool.submit(self._run_job, job)
        return JobHandle(self, parent)

    # -- observation --------------------------------------------------------- #
    def handle(self, job_id: str) -> JobHandle:
        """The handle for a known job id (:class:`JobNotFound`
        otherwise — including jobs already pruned by ``retain``)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFound(f"unknown job id {job_id!r}")
        return JobHandle(self, job)

    def jobs(self) -> "list[JobStatus]":
        """Status snapshots of every job, in submission order."""
        with self._lock:
            records = list(self._jobs.values())
        return [self._status_of(job) for job in records]

    def _status_of(self, job: _Job) -> JobStatus:
        with job.cond:
            return JobStatus(
                job_id=job.job_id,
                kind=job.kind,
                name=job.name,
                state=job.state,
                rows_done=job.rows_done,
                rows_total=job.rows_total,
                stage=job.stage,
                error=str(job.error) if job.error is not None else None,
                error_type=type(job.error).__name__
                if job.error is not None else None,
                traceback=_format_traceback(job.error)
                if job.error is not None else None,
                children=tuple(c.job_id for c in job.children),
            )

    # -- cancellation -------------------------------------------------------- #
    def cancel(self, job_id: str) -> bool:
        """Cancel a job (and, for a grid parent, all its children).

        ``True`` when the job was still live: a queued job is
        cancelled before it starts, a running one stops at its next
        row boundary (closing the stream abandons the runners' pools).
        """
        return self._cancel_job(self.handle(job_id)._job)

    def _cancel_job(self, job: _Job) -> bool:
        with job.cond:
            if job.state in TERMINAL_STATES:
                return False
        job.cancel_event.set()
        # cancel children through the records the parent already holds
        # — a finished child may have been pruned from the job table
        for child in list(job.children):
            self._cancel_job(child)
        # a still-queued future never runs; finish the record ourselves
        if job.future is not None and job.future.cancel():
            self._finish(job, CANCELLED)
        elif job.kind == "grid":
            self._maybe_finish_grid(job)
        return True

    # -- lifecycle plumbing -------------------------------------------------- #
    def _emit(self, job: _Job, event: dict) -> None:
        with job.cond:
            event = dict(event)
            event["job_id"] = job.job_id
            event["seq"] = len(job.events)
            job.events.append(event)
            job.cond.notify_all()
        parent = job.parent
        if parent is not None and event.get("event") != "status":
            forwarded = {k: v for k, v in event.items() if k != "seq"}
            if event.get("event") == "row":
                with parent.cond:
                    parent.rows_done += 1
                    parent.stage = f"{job.job_id}:{event.get('stage')}"
            self._emit_flat(parent, forwarded)

    def _emit_flat(self, job: _Job, event: dict) -> None:
        with job.cond:
            if job.state in TERMINAL_STATES:
                # the `done` event is contractually last — a sibling
                # racing in a forwarded event after the grid parent
                # finished must not extend the log
                return
            event = dict(event)
            event.setdefault("job_id", job.job_id)
            event["seq"] = len(job.events)
            job.events.append(event)
            job.cond.notify_all()

    def _finish(self, job: _Job, state: str, result=None,
                error: "BaseException | None" = None) -> None:
        with job.cond:
            if job.state in TERMINAL_STATES:
                return
            prev_state = job.state
            job.state = state
            job.result = result
            job.error = error
            # the terminal event rides the same lock hold as the state
            # flip: observers never see a terminal state whose `done`
            # event is still in flight
            done = {
                "event": "done", "state": state,
                "error": str(error) if error is not None else None,
                "job_id": job.job_id, "seq": len(job.events),
            }
            if error is not None:
                done["error_type"] = type(error).__name__
                done["traceback"] = _format_traceback(error)
            job.events.append(done)
            job.cond.notify_all()
        GLOBAL.gauge_add("jobs.running" if prev_state == RUNNING
                         else "jobs.queue_depth", -1)
        GLOBAL.inc("jobs.finished", state=state)
        GLOBAL.observe("jobs.latency_seconds",
                       time.perf_counter() - job.submitted_at)
        parent = job.parent
        if parent is not None:
            self._emit_flat(parent, {"event": "child", "state": state,
                                     "job_id": job.job_id})
            self._maybe_finish_grid(parent)
        self._prune()

    def _prune(self) -> None:
        """Drop the oldest finished jobs past ``retain`` from the
        table (their event logs go with them; live handles keep
        working, but :meth:`handle` lookups turn into
        :class:`JobNotFound`)."""
        with self._lock:
            terminal = [job_id for job_id, job in self._jobs.items()
                        if job.state in TERMINAL_STATES]
            excess = len(terminal) - self.retain
            for job_id in terminal[:excess] if excess > 0 else ():
                del self._jobs[job_id]

    def _maybe_finish_grid(self, parent: _Job) -> None:
        children = list(parent.children)
        states = []
        for child in children:
            with child.cond:
                states.append(child.state)
        if any(s not in TERMINAL_STATES for s in states):
            return
        if any(s == FAILED for s in states):
            errors = [c.error for c in children if c.error is not None]
            self._finish(parent, FAILED,
                         error=errors[0] if errors else
                         JobError("a grid child failed"))
        elif any(s == CANCELLED for s in states):
            self._finish(parent, CANCELLED)
        else:
            self._finish(parent, DONE,
                         result=tuple(c.result for c in children))

    def _row(self, job: _Job, stage: "str | None", item) -> None:
        with job.cond:
            job.rows_done += 1
            job.stage = stage
        self._emit(job, {"event": "row", "stage": stage,
                         "data": item.to_dict()})

    def _check_cancel(self, job: _Job) -> None:
        if job.cancel_event.is_set():
            raise _CancelJob()

    # -- execution ----------------------------------------------------------- #
    def _run_job(self, job: _Job) -> None:
        if job.cancel_event.is_set():
            self._finish(job, CANCELLED)
            return
        with job.cond:
            job.state = RUNNING
        GLOBAL.gauge_add("jobs.queue_depth", -1)
        GLOBAL.gauge_add("jobs.running", 1)
        self._emit(job, {"event": "status", "state": RUNNING})
        try:
            if job.kind == "spec":
                result = self._run_spec_job(job)
            else:
                result = self._run_request_job(job)
        except _CancelJob:
            self._finish(job, CANCELLED)
        except Exception as exc:  # reported via status/result, not lost
            self._emit(job, {"event": "error", "error": str(exc),
                             "error_type": type(exc).__name__,
                             "traceback": _format_traceback(exc)})
            self._finish(job, FAILED, error=exc)
        else:
            self._finish(job, DONE, result=result)

    def _run_request_job(self, job: _Job):
        request = job.payload
        stage_kind = _REQUEST_STAGE_KINDS[type(request)]
        if job.resume and self.store is not None:
            loaded = self.store.load_request_result(request)
            if loaded is not None:
                for item in stage_rows(loaded):
                    self._check_cancel(job)
                    self._row(job, stage_kind, item)
                self._emit(job, {"event": "stage", "stage": stage_kind,
                                 "skipped": True,
                                 "artifact":
                                     self.store.request_relpath(request)})
                return loaded
        rows = []
        stream = self.session.stream(request)
        try:
            for item in stream:
                self._check_cancel(job)
                rows.append(item)
                self._row(job, stage_kind, item)
            self._check_cancel(job)
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
        result = self.session.fold_stage(stage_kind, request, rows)
        if self.store is not None:
            relpath = self.store.save_request_result(request, result)
            self._emit(job, {"event": "stage", "stage": stage_kind,
                             "skipped": False, "artifact": relpath})
        return result

    def _run_spec_job(self, job: _Job):
        spec = job.payload
        completed: dict = {}
        if job.resume and self.store is not None:
            completed = self.store.completed_stages(spec)
        names = spec.stage_names()
        kinds = [s["stage"] for s in spec.stages]
        stage_results: list = []
        events = self.session.iter_spec_events(spec, completed=completed)
        try:
            for kind_tag, index, name, item in events:
                self._check_cancel(job)
                if kind_tag == "row":
                    self._row(job, name, item)
                    continue
                stage_results.append(item)
                skipped = index in completed
                if self.store is not None:
                    relpath = self.store.save_stage(
                        spec, index, name, kinds[index], item
                    )
                    self._emit(job, {"event": "stage", "stage": name,
                                     "index": index, "skipped": skipped,
                                     "artifact": relpath})
                else:
                    self._emit(job, {"event": "stage", "stage": name,
                                     "index": index, "skipped": skipped})
            self._check_cancel(job)
        finally:
            close = getattr(events, "close", None)
            if close is not None:
                close()
        return SpecResult(name=spec.name, workload=spec.workload,
                          stages=tuple(stage_results))

    # -- teardown ------------------------------------------------------------ #
    def shutdown(self, wait: bool = True, cancel: bool = False) -> None:
        """Stop accepting jobs; optionally cancel everything live.

        Also releases the session's shared-memory publications — the
        coordinator is the segments' owner, so a clean server exit must
        unlink them (workers that are still draining keep their own
        mappings alive until they exit).
        """
        with self._lock:
            self._closed = True
            jobs = list(self._jobs.values())
        if cancel:
            for job in jobs:
                self.cancel(job.job_id)
        self._pool.shutdown(wait=wait, cancel_futures=cancel)
        self.session.close()

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(wait=True)
