"""Prometheus text exposition for the telemetry registry.

Renders a :class:`repro.utils.telemetry.MetricsRegistry` snapshot in
the Prometheus text format (version 0.0.4) served by ``GET
/v1/metrics``.  Metric names are sanitized to the Prometheus alphabet
(``router.pops`` -> ``repro_router_pops``); label text is preserved
verbatim from the registry's rendered series keys.
"""

from __future__ import annotations

import re

from repro.utils.telemetry import GLOBAL, split_series

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The content type Prometheus scrapers expect.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """``router.pops`` -> ``repro_router_pops``."""
    clean = _SANITIZE.sub("_", name)
    if not clean.startswith("repro_"):
        clean = "repro_" + clean
    return clean


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(name: str, labels: str, value, extra: str = "") -> str:
    inner = ",".join(part for part in (labels, extra) if part)
    tail = f"{{{inner}}}" if inner else ""
    return f"{name}{tail} {_fmt(value)}"


def render_prometheus(registry=None) -> str:
    """The full exposition text for one registry (default: global)."""
    snap = (registry if registry is not None else GLOBAL).snapshot()
    lines: list = []

    by_name: dict = {}
    for key, value in sorted(snap["counters"].items()):
        name, labels = split_series(key)
        by_name.setdefault(metric_name(name), []).append((labels, value))
    for name, samples in by_name.items():
        lines.append(f"# TYPE {name} counter")
        for labels, value in samples:
            lines.append(_sample(name, labels, value))

    by_name = {}
    for key, value in sorted(snap["gauges"].items()):
        name, labels = split_series(key)
        by_name.setdefault(metric_name(name), []).append((labels, value))
    for name, samples in by_name.items():
        lines.append(f"# TYPE {name} gauge")
        for labels, value in samples:
            lines.append(_sample(name, labels, value))

    by_name = {}
    for key, hist in sorted(snap["histograms"].items()):
        name, labels = split_series(key)
        by_name.setdefault(metric_name(name), []).append((labels, hist))
    for name, samples in by_name.items():
        lines.append(f"# TYPE {name} histogram")
        for labels, hist in samples:
            for bound, cumulative in zip(hist["bounds"], hist["buckets"]):
                lines.append(_sample(
                    f"{name}_bucket", labels, cumulative,
                    extra=f'le="{_fmt(bound)}"',
                ))
            lines.append(_sample(
                f"{name}_bucket", labels, hist["count"], extra='le="+Inf"'
            ))
            lines.append(_sample(f"{name}_sum", labels, hist["sum"]))
            lines.append(_sample(f"{name}_count", labels, hist["count"]))

    return "\n".join(lines) + "\n" if lines else "\n"
