from setuptools import setup

# Offline environment lacks the `wheel` package, so `pip install -e .`
# (PEP 660) cannot build; `python setup.py develop` installs the same
# editable package using only setuptools. Metadata lives in pyproject.toml.
setup()
